(* The differential harness tested against itself.

   A clean engine must survive a few hundred random cases; an engine
   with a deliberately injected planner fault must NOT — and the shrunk
   counterexample must be small. This is the standing proof that the
   harness has teeth: if a refactor ever silences it, these tests fail
   before a real bug can hide behind it. *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Plan = Toss_core.Plan
module Rng = Toss_check.Rng
module Gen = Toss_check.Gen
module Oracle = Toss_check.Oracle
module Diff = Toss_check.Diff
module Harness = Toss_check.Harness

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------- generator ------------------------------ *)

let test_gen_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.case seed and b = Gen.case seed in
      Alcotest.(check string)
        "same seed, same case" (Gen.to_ocaml a) (Gen.to_ocaml b);
      checkb "same op" true (a.Gen.op = b.Gen.op))
    [ 0; 1; 42; 123456789 ]

let test_gen_covers_both_ops () =
  let rng = Rng.create 7 in
  let seeds = List.init 64 (fun _ -> Rng.sub_seed rng) in
  let ops = List.map (fun s -> (Gen.case s).Gen.op) seeds in
  checkb "some selections" true (List.mem Gen.Select ops);
  checkb "some joins" true (List.mem Gen.Join ops);
  List.iter
    (fun s ->
      let c = Gen.case s in
      checkb "selections have no right corpus" true
        (c.Gen.op = Gen.Join || c.Gen.right_docs = []);
      checkb "at least one document" true (c.Gen.docs <> []))
    seeds

(* --------------------------- oracle ------------------------------- *)

(* A case tiny enough to verify by hand: //a[b] with SL = {b}. *)
let test_oracle_by_hand () =
  let doc =
    Doc.of_tree
      (Toss_xml.Parser.parse_exn "<a><b>x</b><a><b>y</b></a></a>")
  in
  let pattern =
    Pattern.v
      (Pattern.node 1 [ (Pattern.Ad, Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "a"; Condition.tag_eq 2 "b" ])
  in
  let eval = Condition.eval_tax in
  let results, n = Oracle.select ~eval ~pattern ~sl:[ 2 ] [ doc ] in
  (* Embeddings: outer a -> either b (2), inner a -> inner b (1). *)
  checki "three satisfying embeddings" 3 n;
  (* Witnesses under SL = {b}: <a><b>x</b></a> from the first embedding;
     the other two embeddings both render as <a><b>y</b></a> — different
     nodes, identical witness value — and set semantics keeps one. *)
  checki "two distinct witnesses" 2 (List.length results)

let test_oracle_matches_executor_on_workload () =
  (* Redundant with [toss check] but pinned here so `dune runtest` alone
     exercises the differential loop. *)
  let rng = Rng.create 2024 in
  let failures =
    List.init 60 (fun _ -> Rng.sub_seed rng)
    |> List.filter_map (fun s -> Diff.check_case (Gen.case s))
  in
  checki "no discrepancies on 60 cases" 0 (List.length failures)

(* ---------------------- harness and faults ------------------------ *)

let test_clean_run_passes () =
  match Harness.run ~seed:42 ~runs:120 () with
  | Harness.Pass { runs } -> checki "all runs checked" 120 runs
  | Harness.Fail { failure; _ } ->
      Alcotest.failf "unexpected discrepancy: %s" failure.Diff.detail

let expect_caught ?op ?max_per_side ~runs name fault =
  match Harness.run ~fault ?op ~seed:42 ~runs () with
  | Harness.Pass _ -> Alcotest.failf "%s: fault not caught in %d runs" name runs
  | Harness.Fail { failure; _ } ->
      let c = failure.Diff.case in
      let docs = List.length c.Gen.docs + List.length c.Gen.right_docs in
      checkb (name ^ ": shrunk to at most 3 documents") true (docs <= 3);
      Option.iter
        (fun m ->
          checkb
            (Printf.sprintf "%s: shrunk to at most %d document(s) per side" name m)
            true
            (List.length c.Gen.docs <= m && List.length c.Gen.right_docs <= m))
        max_per_side;
      checkb (name ^ ": repro mentions the discrepancy") true
        (String.length (Harness.repro failure) > 0);
      (* The injected fault must not leak out of the run. *)
      checkb (name ^ ": fault reset after run") true (!Plan.fault = Plan.No_fault)

let test_fault_no_dedup () = expect_caught ~runs:200 "no-dedup" Plan.No_dedup

let test_fault_prune_first_only () =
  expect_caught ~runs:200 "prune-first-only" Plan.Prune_first_only

let test_fault_hash_no_recheck () =
  expect_caught ~op:Gen.Join ~runs:500 "hash-no-recheck" Plan.Hash_no_recheck

(* The two sim-join faults bracket the operator's two proof obligations:
   candidate completeness (a too-short signature prefix loses pairs the
   nested-loop reference finds) and soundness (skipping the cross-
   condition recheck emits pairs that merely share a prefix token).
   Both must shrink to a couple of documents per side — [Sim_pair] still
   fires there because the planner's build-side threshold is 2. *)
let test_fault_simjoin_prefix_too_short () =
  expect_caught ~op:Gen.Join ~max_per_side:2 ~runs:500 "simjoin-prefix-too-short"
    Plan.Simjoin_prefix_too_short

let test_fault_simjoin_no_recheck () =
  expect_caught ~op:Gen.Join ~max_per_side:2 ~runs:500 "simjoin-no-recheck"
    Plan.Simjoin_no_recheck

(* -------------------------- shrinker ------------------------------ *)

let test_shrinker_requires_failure () =
  (* A trivially passing case must be rejected, not "minimized". *)
  let case = Gen.case 42 in
  match Diff.check_case case with
  | Some _ -> Alcotest.fail "fixture: seed 42 unexpectedly fails clean"
  | None ->
      checkb "minimize rejects passing cases" true
        (try
           ignore (Toss_check.Shrink.minimize case);
           false
         with Invalid_argument _ -> true)

let () =
  Alcotest.run "toss_check"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_gen_deterministic;
          Alcotest.test_case "covers both operators" `Quick test_gen_covers_both_ops;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "hand-checked selection" `Quick test_oracle_by_hand;
          Alcotest.test_case "agrees with executor (60 cases)" `Quick
            test_oracle_matches_executor_on_workload;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean run passes" `Quick test_clean_run_passes;
          Alcotest.test_case "catches missing dedup" `Quick test_fault_no_dedup;
          Alcotest.test_case "catches over-eager pruning" `Quick
            test_fault_prune_first_only;
          Alcotest.test_case "catches skipped hash recheck" `Quick
            test_fault_hash_no_recheck;
          Alcotest.test_case "catches too-short simjoin prefixes" `Quick
            test_fault_simjoin_prefix_too_short;
          Alcotest.test_case "catches skipped simjoin recheck" `Quick
            test_fault_simjoin_no_recheck;
          Alcotest.test_case "shrinker rejects passing cases" `Quick
            test_shrinker_requires_failure;
        ] );
    ]
