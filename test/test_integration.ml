(* End-to-end integration tests: a miniature of the paper's Section 6
   evaluation. A ground-truth corpus is rendered into DBLP-style XML,
   the full TOSS precomputation pipeline runs (Ontology Maker -> fusion ->
   SEA), and the Figure 15 workload executes under TAX, TOSS(eps=2) and
   TOSS(eps=3). The paper's qualitative claims are asserted:

   - TAX precision is 1.0 on every query, with low recall;
   - TOSS recall dominates TAX recall, and grows with eps;
   - TOSS precision stays high (possibly < 1);
   - TOSS quality dominates TAX quality on average. *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Collection = Toss_store.Collection
module Seo = Toss_core.Seo
module Executor = Toss_core.Executor
module Corpus = Toss_data.Corpus
module Dblp_gen = Toss_data.Dblp_gen
module Sigmod_gen = Toss_data.Sigmod_gen
module Workload = Toss_data.Workload
module Quality = Toss_eval.Quality

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let corpus = Corpus.generate ~seed:7 ~n_papers:100 ()
let dblp = Dblp_gen.render ~seed:7 corpus
let doc = Doc.of_tree dblp.Dblp_gen.tree

let collection_t =
  let c = Collection.create "dblp" in
  ignore (Collection.add_document c dblp.Dblp_gen.tree);
  c

(* The executor takes immutable snapshots; the writable handle stays
   around for the persistence round-trip test. *)
let collection = Collection.snapshot collection_t

let seo_for eps =
  match
    Seo.of_documents ~metric:Workload.experiment_metric ~eps [ doc ]
  with
  | Ok seo -> seo
  | Error msg -> failwith msg

let seo2 = seo_for 2.0
let seo3 = seo_for 3.0

let queries = Workload.selection_queries corpus

type run = { precision : float; recall : float; quality : float }

let run_query seo mode (q : Workload.query) =
  let results, _ =
    Executor.select ~mode seo collection ~pattern:q.Workload.pattern ~sl:q.Workload.sl
  in
  let returned = Workload.result_keys results in
  let p, r, quality = Quality.evaluate ~correct:q.Workload.correct ~returned in
  { precision = p; recall = r; quality }

let tax_runs = lazy (List.map (run_query seo2 Executor.Tax) queries)
let toss2_runs = lazy (List.map (run_query seo2 Executor.Toss) queries)
let toss3_runs = lazy (List.map (run_query seo3 Executor.Toss) queries)

let mean f runs = Quality.mean (List.map f runs)

let test_tax_precision_is_one () =
  List.iteri
    (fun i r ->
      checkb (Printf.sprintf "query %d precision 1" (i + 1)) true (r.precision = 1.0))
    (Lazy.force tax_runs)

let test_tax_recall_low () =
  let avg = mean (fun r -> r.recall) (Lazy.force tax_runs) in
  checkb "TAX average recall below 0.6" true (avg < 0.6);
  (* The paper: recall below 0.5 for most queries. *)
  let low =
    List.length (List.filter (fun r -> r.recall < 0.5) (Lazy.force tax_runs))
  in
  checkb "at least half the queries below 0.5" true (2 * low >= List.length queries)

let test_toss_recall_dominates_tax () =
  List.iteri
    (fun i (tax, toss) ->
      checkb (Printf.sprintf "query %d: toss recall >= tax recall" (i + 1)) true
        (toss.recall >= tax.recall -. 1e-9))
    (List.combine (Lazy.force tax_runs) (Lazy.force toss3_runs));
  checkb "strictly better on average" true
    (mean (fun r -> r.recall) (Lazy.force toss3_runs)
    > mean (fun r -> r.recall) (Lazy.force tax_runs) +. 0.1)

let test_eps_monotonicity () =
  let r2 = mean (fun r -> r.recall) (Lazy.force toss2_runs) in
  let r3 = mean (fun r -> r.recall) (Lazy.force toss3_runs) in
  checkb "recall grows with eps" true (r3 >= r2);
  checkb "eps 3 meaningfully higher" true (r3 > r2 +. 0.02)

let test_toss_precision_high () =
  let p2 = mean (fun r -> r.precision) (Lazy.force toss2_runs) in
  let p3 = mean (fun r -> r.precision) (Lazy.force toss3_runs) in
  checkb "eps 2 precision above 0.9" true (p2 > 0.9);
  checkb "eps 3 precision above 0.8" true (p3 > 0.8);
  checkb "precision does not grow with eps" true (p2 >= p3 -. 1e-9)

let test_quality_dominance () =
  let q_tax = mean (fun r -> r.quality) (Lazy.force tax_runs) in
  let q3 = mean (fun r -> r.quality) (Lazy.force toss3_runs) in
  checkb "TOSS(3) quality dominates TAX quality" true (q3 > q_tax)

(* ------------------------------------------------------------------ *)
(* Executor phase accounting and result sanity                          *)
(* ------------------------------------------------------------------ *)

let test_phases_and_counts () =
  let q = List.hd queries in
  let results, stats =
    Executor.select ~mode:Executor.Toss seo3 collection ~pattern:q.Workload.pattern
      ~sl:q.Workload.sl
  in
  checkb "phases non-negative" true
    (stats.Executor.phases.Executor.rewrite_s >= 0.
    && stats.Executor.phases.Executor.execute_s >= 0.
    && stats.Executor.phases.Executor.assemble_s >= 0.);
  checki "result count" (List.length results) stats.Executor.n_results;
  checkb "candidates fetched" true (stats.Executor.n_candidates > 0);
  checkb "compiled run issues no queries" true (stats.Executor.queries = []);
  (* The interpreted pipeline still records its per-label store queries
     and agrees on the answer. *)
  let results_i, stats_i =
    Executor.select ~mode:Executor.Toss ~compile:false seo3 collection
      ~pattern:q.Workload.pattern ~sl:q.Workload.sl
  in
  checkb "interpreted select agrees" true (results_i = results);
  checkb "three xpath queries" true (List.length stats_i.Executor.queries = 3)

(* ------------------------------------------------------------------ *)
(* Cross-schema join (Figure 16(b) shape) on a small corpus             *)
(* ------------------------------------------------------------------ *)

let test_cross_schema_join () =
  let small = Corpus.generate ~seed:3 ~n_papers:16 () in
  let d = Dblp_gen.render ~seed:3 small in
  let s = Sigmod_gen.render ~seed:3 small in
  let left = Collection.create "dblp" in
  ignore (Collection.add_document left d.Dblp_gen.tree);
  let right = Collection.create "sigmod" in
  List.iter (fun t -> ignore (Collection.add_document right t)) s.Sigmod_gen.trees;
  let left = Collection.snapshot left and right = Collection.snapshot right in
  let docs =
    Doc.of_tree d.Dblp_gen.tree :: List.map Doc.of_tree s.Sigmod_gen.trees
  in
  let seo =
    match Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0 docs with
    | Ok seo -> seo
    | Error m -> failwith m
  in
  let pattern, sl = Workload.join_query () in
  let toss_results, _ = Executor.join ~mode:Executor.Toss seo left right ~pattern ~sl in
  let tax_results, _ = Executor.join ~mode:Executor.Tax seo left right ~pattern ~sl in
  let toss_pairs = Workload.result_key_pairs toss_results in
  let tax_pairs = Workload.result_key_pairs tax_results in
  (* Every paper appears in both renderings; the join on title similarity
     should recover most same-key pairs. Titles are unique per paper so
     all matched pairs must be same-key. *)
  checkb "all TOSS pairs are correct" true (List.for_all (fun (l, r) -> l = r) toss_pairs);
  checkb "TOSS recovers most papers" true (List.length toss_pairs >= 12);
  checkb "TAX pairs are a subset" true
    (List.for_all (fun p -> List.mem p toss_pairs) tax_pairs);
  checkb "abbreviated titles block TAX" true
    (List.length tax_pairs < List.length toss_pairs)

(* ------------------------------------------------------------------ *)
(* The in-memory TOSS algebra agrees with the executor on the workload  *)
(* ------------------------------------------------------------------ *)

let test_executor_algebra_agreement_on_workload () =
  let small = Corpus.generate ~seed:11 ~n_papers:30 () in
  let d = Dblp_gen.render ~seed:11 small in
  let coll = Collection.create "dblp" in
  ignore (Collection.add_document coll d.Dblp_gen.tree);
  let coll = Collection.snapshot coll in
  let seo =
    match
      Seo.of_documents ~metric:Workload.experiment_metric ~eps:3.0
        [ Doc.of_tree d.Dblp_gen.tree ]
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  List.iter
    (fun (q : Workload.query) ->
      let via_store, _ =
        Executor.select ~mode:Executor.Toss seo coll ~pattern:q.Workload.pattern
          ~sl:q.Workload.sl
      in
      let in_memory =
        Toss_core.Toss_algebra.select seo ~pattern:q.Workload.pattern ~sl:q.Workload.sl
          [ d.Dblp_gen.tree ]
      in
      checkb
        (Printf.sprintf "query %d agreement" q.Workload.query_id)
        true
        (Workload.result_keys via_store = Workload.result_keys in_memory))
    (Workload.selection_queries ~n:6 small)

(* ------------------------------------------------------------------ *)
(* Durability: answers survive a save/load cycle                        *)
(* ------------------------------------------------------------------ *)

let test_persistence_preserves_answers () =
  let q = List.hd queries in
  let before, _ =
    Executor.select ~mode:Executor.Toss seo2 collection ~pattern:q.Workload.pattern
      ~sl:q.Workload.sl
  in
  let dir = Filename.temp_file "toss_int" "" in
  Sys.remove dir;
  Toss_store.Persist.save_collection collection_t ~dir;
  match Toss_store.Persist.load_collection ~name:"reloaded" dir with
  | Error msg -> Alcotest.fail msg
  | Ok reloaded ->
      let after, _ =
        Executor.select ~mode:Executor.Toss seo2 (Collection.snapshot reloaded)
          ~pattern:q.Workload.pattern ~sl:q.Workload.sl
      in
      Alcotest.(check (list string)) "same answer keys"
        (Workload.result_keys before) (Workload.result_keys after)

(* ------------------------------------------------------------------ *)
(* SAX-filtered ingestion: the big-dump workflow                        *)
(* ------------------------------------------------------------------ *)

let test_sax_filtered_ingestion () =
  (* Extract only the inproceedings records from the serialized dump (the
     way one would carve the paper's 188 MB DBLP down to Xindice's 5 MB),
     load them as individual documents, and query. *)
  let dump = Toss_xml.Printer.to_string dblp.Dblp_gen.tree in
  match Toss_xml.Sax.trees_where (fun tag -> tag = "inproceedings") dump with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Toss_xml.Parser.pp_error e)
  | Ok records ->
      Alcotest.(check int) "all records extracted" 100 (List.length records);
      let coll = Collection.create "records" in
      List.iter (fun t -> ignore (Collection.add_document coll t)) records;
      let coll = Collection.snapshot coll in
      let q = List.hd queries in
      let per_record, _ =
        Executor.select ~mode:Executor.Toss seo2 coll ~pattern:q.Workload.pattern
          ~sl:q.Workload.sl
      in
      let whole, _ =
        Executor.select ~mode:Executor.Toss seo2 collection ~pattern:q.Workload.pattern
          ~sl:q.Workload.sl
      in
      Alcotest.(check (list string)) "same answers as the single-document form"
        (Workload.result_keys whole)
        (Workload.result_keys per_record)

(* ------------------------------------------------------------------ *)
(* Session-level replay of a workload query via TQL                     *)
(* ------------------------------------------------------------------ *)

let test_session_tql_matches_executor () =
  let session =
    Toss_core.Session.create ~metric:Workload.experiment_metric ~eps:2.0
      ~content_tags:[ "author"; "booktitle" ] ()
  in
  Toss_core.Session.add_document session ~collection:"dblp" dblp.Dblp_gen.tree;
  (* Rebuild the first workload query as TQL text. *)
  let q = List.hd queries in
  let author, venue =
    match Toss_tax.Condition.atoms q.Workload.pattern.Toss_tax.Pattern.condition with
    | [ _; _; _; Toss_tax.Condition.Sim (_, Toss_tax.Condition.Str a);
        Toss_tax.Condition.Isa (_, Toss_tax.Condition.Str v) ] ->
        (a, v)
    | _ -> Alcotest.fail "unexpected workload query shape"
  in
  let tql =
    Printf.sprintf
      {|MATCH #1:inproceedings(/#2:author, /#3:booktitle)
        WHERE #2.content ~ "%s" AND #3.content isa "%s"
        SELECT #1|}
      author venue
  in
  match Toss_core.Session.query session ~collection:"dblp" tql with
  | Error msg -> Alcotest.fail msg
  | Ok answer ->
      let direct, _ =
        Executor.select ~mode:Executor.Toss
          (Result.get_ok (Toss_core.Session.seo session))
          (Collection.snapshot
             (Option.get (Toss_core.Session.collection session "dblp")))
          ~pattern:q.Workload.pattern ~sl:q.Workload.sl
      in
      Alcotest.(check (list string)) "TQL and direct answers agree"
        (Workload.result_keys direct)
        (Workload.result_keys answer.Toss_core.Session.trees)

let () =
  Alcotest.run "toss_integration"
    [
      ( "figure 15 shape",
        [
          Alcotest.test_case "TAX precision is 1.0" `Slow test_tax_precision_is_one;
          Alcotest.test_case "TAX recall is low" `Slow test_tax_recall_low;
          Alcotest.test_case "TOSS recall dominates" `Slow test_toss_recall_dominates_tax;
          Alcotest.test_case "recall grows with eps" `Slow test_eps_monotonicity;
          Alcotest.test_case "TOSS precision stays high" `Slow test_toss_precision_high;
          Alcotest.test_case "quality dominance" `Slow test_quality_dominance;
        ] );
      ( "executor",
        [
          Alcotest.test_case "phase accounting" `Slow test_phases_and_counts;
          Alcotest.test_case "cross-schema join" `Slow test_cross_schema_join;
          Alcotest.test_case "store/algebra agreement" `Slow
            test_executor_algebra_agreement_on_workload;
        ] );
      ( "system",
        [
          Alcotest.test_case "persistence preserves answers" `Slow
            test_persistence_preserves_answers;
          Alcotest.test_case "sax-filtered ingestion" `Slow test_sax_filtered_ingestion;
          Alcotest.test_case "session TQL replay" `Slow test_session_tql_matches_executor;
        ] );
    ]
