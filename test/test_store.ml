(* Tests for the Xindice-substitute store: XPath AST/parser/evaluation,
   value indexes, collections and the database facade. *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Parser = Toss_xml.Parser
module Xpath = Toss_store.Xpath
module Xpath_parser = Toss_store.Xpath_parser
module Index = Toss_store.Index
module Collection = Toss_store.Collection
module Database = Toss_store.Database

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let check_il = Alcotest.(check (list int))

let doc =
  Doc.of_tree
    (Parser.parse_exn
       {|<dblp>
           <inproceedings key="p1">
             <author>Jeff Ullman</author>
             <title>Principles of DB</title>
             <booktitle>PODS</booktitle>
             <year>1998</year>
           </inproceedings>
           <inproceedings key="p2">
             <author>Jennifer Widom</author>
             <author>Jeff Ullman</author>
             <title>Active DB</title>
             <booktitle>SIGMOD Conference</booktitle>
             <year>1999</year>
           </inproceedings>
           <article key="p3">
             <author>Serge Abiteboul</author>
             <title>Views</title>
           </article>
         </dblp>|})

let eval s = Xpath.eval doc (Xpath_parser.parse_exn s)
let tags_of nodes = List.map (Doc.tag doc) nodes

(* ------------------------------------------------------------------ *)
(* XPath evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let test_descendant_axis () =
  checki "all authors" 4 (List.length (eval "//author"));
  checki "root selected by //dblp" 1 (List.length (eval "//dblp"));
  checki "wildcard counts all elements" (Doc.size doc) (List.length (eval "//*"))

let test_child_axis () =
  checki "direct children" 2 (List.length (eval "/dblp/inproceedings"));
  checki "absolute path to authors" 3 (List.length (eval "/dblp/inproceedings/author"));
  checki "wrong root" 0 (List.length (eval "/nope/inproceedings"))

let test_mixed_axes () =
  checki "descendant after child" 3 (List.length (eval "/dblp//inproceedings//author"));
  Alcotest.(check (list string)) "tags" [ "author"; "author"; "author" ]
    (tags_of (eval "/dblp//inproceedings//author"))

let test_predicates_content () =
  checki "exact content" 1 (List.length (eval "//author[.='Jennifer Widom']"));
  checki "contains" 2 (List.length (eval "//title[contains(.,'DB')]"));
  checki "child equality" 1
    (List.length (eval "//inproceedings[booktitle='PODS']"));
  checki "child contains" 1
    (List.length (eval "//inproceedings[contains(booktitle,'SIGMOD')]"));
  checki "existence test" 2 (List.length (eval "//inproceedings[year]"));
  checki "attribute" 1 (List.length (eval "//inproceedings[@key='p2']"))

let test_predicates_boolean () =
  checki "and" 1
    (List.length (eval "//inproceedings[booktitle='PODS' and year='1998']"));
  checki "or" 2
    (List.length (eval "//inproceedings[booktitle='PODS' or booktitle='SIGMOD Conference']"));
  checki "not" 1 (List.length (eval "//inproceedings[not(booktitle='PODS')]"));
  checki "nested parens" 2
    (List.length (eval "//inproceedings[(booktitle='PODS' or year='1999') and author]"))

let test_position_predicate () =
  let nodes = eval "//inproceedings[1]" in
  checki "first only" 1 (List.length nodes);
  checks "is p1" "p1" (List.assoc "key" (Doc.attrs doc (List.hd nodes)));
  checki "out of range" 0 (List.length (eval "//article[5]"))

let test_union () =
  checki "union" 3 (List.length (eval "//inproceedings | //article"));
  checki "overlapping union dedups" 2 (List.length (eval "//article | //article/author | //article//author"))

let test_xpath_to_string_roundtrip () =
  let queries =
    [
      "//author";
      "/dblp/inproceedings[booktitle='PODS']/title";
      "//inproceedings[contains(title,'DB')][year='1998']";
      "//a[.='x'][2] | //b[@k='v']";
      "//x[not((a='1' and b='2'))]";
    ]
  in
  List.iter
    (fun q ->
      let ast = Xpath_parser.parse_exn q in
      let printed = Xpath.to_string ast in
      let reparsed = Xpath_parser.parse_exn printed in
      checkb (Printf.sprintf "roundtrip %s" q) true (ast = reparsed))
    queries

let test_xpath_edge_cases () =
  (* Nested elements with the same tag: // must reach all of them. *)
  let nested = Doc.of_tree (Parser.parse_exn "<a><a><a>x</a></a></a>") in
  checki "self-similar nesting" 3 (List.length (Xpath.eval nested (Xpath_parser.parse_exn "//a")));
  checki "child chain" 1 (List.length (Xpath.eval nested (Xpath_parser.parse_exn "/a/a/a")));
  (* Predicates on the root step. *)
  checki "root predicate hit" 1
    (List.length (eval "//dblp[inproceedings]"));
  checki "root predicate miss" 0 (List.length (eval "//dblp[nothing]"));
  (* Wildcards mid-path. *)
  checki "wildcard step" 4 (List.length (eval "/dblp/*/author"));
  (* Content equality against an inner node's string-value. *)
  checki "string-value of inner node" 1
    (List.length (eval "//article[.='Serge AbiteboulViews']"))

let test_xpath_empty_contains () =
  (* contains with the empty needle is vacuously true. *)
  checki "empty needle matches everything" 3
    (List.length (eval "//title[contains(.,'')]"))

let test_xpath_parse_errors () =
  List.iter
    (fun q ->
      match Xpath_parser.parse q with
      | Ok _ -> Alcotest.fail ("expected parse failure: " ^ q)
      | Error _ -> ())
    [ ""; "author"; "//a["; "//a[']"; "//a]"; "//a | "; "//a[foo=bar]" ]

(* ------------------------------------------------------------------ *)
(* Index                                                                *)
(* ------------------------------------------------------------------ *)

let test_index_eq_lookup () =
  let idx = Index.build doc in
  checki "exact author" 2
    (List.length (Index.eq_lookup idx ~tag:"author" ~value:"Jeff Ullman"));
  checki "no match" 0 (List.length (Index.eq_lookup idx ~tag:"author" ~value:"Nobody"));
  checki "wrong tag" 0 (List.length (Index.eq_lookup idx ~tag:"title" ~value:"Jeff Ullman"))

let test_index_token_lookup () =
  let idx = Index.build doc in
  checki "token" 2 (List.length (Index.token_lookup idx ~tag:"author" ~token:"jeff"));
  checki "token in titles" 2 (List.length (Index.token_lookup idx ~tag:"title" ~token:"db"));
  checkb "index has entries" true (Index.n_entries idx > 0)

(* ------------------------------------------------------------------ *)
(* Collection                                                           *)
(* ------------------------------------------------------------------ *)

let small_doc_a = Parser.parse_exn "<r><a>1</a><b>2</b></r>"
let small_doc_b = Parser.parse_exn "<r><a>3</a></r>"

let make_collection () =
  let c = Collection.create "test" in
  let id0 = Collection.add_document c small_doc_a in
  let id1 = Collection.add_document c small_doc_b in
  (c, id0, id1)

let test_collection_basics () =
  let c, id0, id1 = make_collection () in
  checki "two documents" 2 (Collection.n_documents c);
  check_il "ids" [ 0; 1 ] (Collection.doc_ids c);
  checkb "doc roundtrip" true (Tree.equal (Doc.to_tree (Collection.doc c id0)) small_doc_a);
  checkb "second doc" true (Tree.equal (Doc.to_tree (Collection.doc c id1)) small_doc_b);
  checki "nodes across docs" 5 (Collection.n_nodes c);
  checks "name" "test" (Collection.name c)

let test_collection_eval () =
  let c, _, _ = make_collection () in
  let hits = Collection.eval_string c "//a" in
  checki "a in both docs" 2 (List.length hits);
  Alcotest.(check (list int)) "doc ids in order" [ 0; 1 ] (List.map fst hits);
  let hits = Collection.eval_string c "//a[.='3']" in
  checki "filtered to one doc" 1 (List.length hits);
  checki "that doc is 1" 1 (fst (List.hd hits))

let test_collection_eval_index_agrees () =
  (* The indexed fast path must return exactly what the naive evaluator
     returns, on a variety of queries. *)
  let c, _, _ = make_collection () in
  let big = Collection.create "big" in
  ignore
    (Collection.add_document big
       (Parser.parse_exn
          "<x><y><a>1</a><a>2</a></y><z><a>1</a><b><a>3</a></b></z></x>"));
  List.iter
    (fun (coll : Collection.t) ->
      List.iter
        (fun q ->
          let with_index = Collection.eval_string ~use_index:true coll q in
          let without = Collection.eval_string ~use_index:false coll q in
          checkb (Printf.sprintf "index agreement on %s" q) true (with_index = without))
        [ "//a"; "//a[.='1']"; "//y/a"; "//z//a"; "//a[2]"; "/x/z/b/a"; "//q" ])
    [ c; big ]

let test_collection_size_limit () =
  let c = Collection.create ~max_bytes:20 "tiny" in
  ignore (Collection.add_document c small_doc_b);
  Alcotest.check_raises "xindice-style limit"
    (Collection.Collection_full { name = "tiny"; limit = 20 }) (fun () ->
      ignore (Collection.add_document c small_doc_a))

let test_collection_add_xml () =
  let c = Collection.create "xml" in
  (match Collection.add_xml c "<a><b>x</b></a>" with
  | Ok id -> checki "id assigned" 0 id
  | Error _ -> Alcotest.fail "valid xml rejected");
  match Collection.add_xml c "<a><b></a>" with
  | Ok _ -> Alcotest.fail "invalid xml accepted"
  | Error _ -> checki "count unchanged" 1 (Collection.n_documents c)

let test_collection_eq_lookup_and_subtrees () =
  let c, _, _ = make_collection () in
  let hits = Collection.eq_lookup c ~tag:"a" ~value:"1" in
  checki "eq hit" 1 (List.length hits);
  let trees = Collection.subtrees c hits in
  checkb "subtree materialized" true (Tree.equal (List.hd trees) (Tree.leaf "a" "1"))

(* ------------------------------------------------------------------ *)
(* Database                                                             *)
(* ------------------------------------------------------------------ *)

let test_database () =
  let db = Database.create () in
  let c = Database.create_collection db "dblp" in
  ignore (Collection.add_document c small_doc_a);
  checkb "lookup" true (Database.collection db "dblp" <> None);
  checkb "missing" true (Database.collection db "nope" = None);
  Alcotest.(check (list string)) "names" [ "dblp" ] (Database.collection_names db);
  checki "query through facade" 1 (List.length (Database.query db ~collection:"dblp" "//a"));
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Database.create_collection: \"dblp\" already exists") (fun () ->
      ignore (Database.create_collection db "dblp"));
  Database.drop_collection db "dblp";
  checkb "dropped" true (Database.collection db "dblp" = None)

(* ------------------------------------------------------------------ *)
(* Persistence                                                          *)
(* ------------------------------------------------------------------ *)

module Persist = Toss_store.Persist

let temp_dir () =
  let dir = Filename.temp_file "toss_store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let test_persist_collection () =
  let c, _, _ = make_collection () in
  let dir = Filename.concat (temp_dir ()) "coll" in
  Persist.save_collection c ~dir;
  match Persist.load_collection ~name:"reloaded" dir with
  | Error msg -> Alcotest.fail msg
  | Ok c' ->
      checki "document count survives" (Collection.n_documents c)
        (Collection.n_documents c');
      List.iter
        (fun id ->
          checkb
            (Printf.sprintf "document %d equal" id)
            true
            (Tree.equal
               (Doc.to_tree (Collection.doc c id))
               (Doc.to_tree (Collection.doc c' id))))
        (Collection.doc_ids c);
      checks "name taken from caller" "reloaded" (Collection.name c')

let test_persist_database () =
  let db = Database.create () in
  let c1 = Database.create_collection db "alpha" in
  ignore (Collection.add_document c1 small_doc_a);
  let c2 = Database.create_collection db "beta" in
  ignore (Collection.add_document c2 small_doc_b);
  ignore (Collection.add_document c2 small_doc_a);
  let dir = temp_dir () in
  Persist.save_database db ~dir;
  match Persist.load_database ~dir with
  | Error msg -> Alcotest.fail msg
  | Ok db' ->
      Alcotest.(check (list string)) "collections survive" [ "alpha"; "beta" ]
        (Database.collection_names db');
      checki "beta has two docs" 2
        (Collection.n_documents (Database.collection_exn db' "beta"));
      checki "query works after reload" 2
        (List.length (Database.query db' ~collection:"beta" "//a"))

(* Content that exercises every XML-escaping path: markup characters in
   text and attributes, quotes, whitespace-significant text. The
   save/load round-trip must preserve the trees exactly — the serving
   path depends on it (the server's durable inserts are
   [append_document] files re-parsed at hydration). *)
let test_persist_escaping_roundtrip () =
  let nasty =
    [
      "<doc a=\"5 &lt; 6 &amp; 7 &gt; 2\"><t>a &lt; b &amp;&amp; c &gt; d</t></doc>";
      "<doc q=\"say &quot;hi&quot; &apos;there&apos;\"><t>\"mixed' quotes</t></doc>";
      "<doc><pre>  spaced   text  </pre><t>tab\there</t></doc>";
      "<doc><t>brackets ]]&gt; and entities &amp;amp; survive</t></doc>";
    ]
  in
  let c = Collection.create "nasty" in
  List.iter (fun xml -> ignore (Collection.add_xml c xml)) nasty;
  checki "all docs stored" (List.length nasty) (Collection.n_documents c);
  let dir = Filename.concat (temp_dir ()) "nasty" in
  Persist.save_collection c ~dir;
  (match Persist.load_collection ~name:"nasty" dir with
  | Error msg -> Alcotest.fail msg
  | Ok c' ->
      List.iter
        (fun id ->
          checkb
            (Printf.sprintf "doc %d round-trips" id)
            true
            (Tree.equal
               (Doc.to_tree (Collection.doc c id))
               (Doc.to_tree (Collection.doc c' id))))
        (Collection.doc_ids c));
  (* The incremental write path must agree with the bulk one. *)
  let dir2 = temp_dir () in
  List.iteri
    (fun id xml ->
      Persist.append_document ~dir:dir2 ~collection:"nasty"
        id (Parser.parse_exn xml))
    nasty;
  match Persist.load_database ~dir:dir2 with
  | Error msg -> Alcotest.fail msg
  | Ok db ->
      let c' = Database.collection_exn db "nasty" in
      List.iter
        (fun id ->
          checkb
            (Printf.sprintf "appended doc %d round-trips" id)
            true
            (Tree.equal
               (Doc.to_tree (Collection.doc c id))
               (Doc.to_tree (Collection.doc c' id))))
        (Collection.doc_ids c)

(* A broken database reports every unloadable file, not just the
   first. *)
let test_persist_aggregated_errors () =
  let dir = temp_dir () in
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc
  in
  Sys.mkdir (Filename.concat dir "good") 0o755;
  write (Filename.concat dir "good/000000.xml") "<ok/>";
  Sys.mkdir (Filename.concat dir "bad") 0o755;
  write (Filename.concat dir "bad/000000.xml") "<broken>";
  write (Filename.concat dir "bad/000001.xml") "also not xml";
  Sys.mkdir (Filename.concat dir "worse") 0o755;
  write (Filename.concat dir "worse/000000.xml") "<nope";
  match Persist.load_database ~dir with
  | Ok _ -> Alcotest.fail "expected load errors"
  | Error msg ->
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i =
          i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
        in
        go 0
      in
      (* both files of [bad] and the one of [worse] are all reported *)
      List.iter
        (fun file ->
          checkb (Printf.sprintf "error mentions %s" file) true
            (contains msg file))
        [ "bad/000000.xml"; "bad/000001.xml"; "worse/000000.xml" ]

let test_persist_errors () =
  (match Persist.load_collection ~name:"x" "/nonexistent/path" with
  | Ok _ -> Alcotest.fail "expected an error for a missing directory"
  | Error _ -> ());
  (* A malformed file is reported with its path. *)
  let dir = temp_dir () in
  let oc = open_out (Filename.concat dir "000000.xml") in
  output_string oc "<broken>";
  close_out oc;
  match Persist.load_collection ~name:"x" dir with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg -> checkb "path mentioned" true (String.length msg > 0)

let () =
  Alcotest.run "toss_store"
    [
      ( "xpath eval",
        [
          Alcotest.test_case "descendant axis" `Quick test_descendant_axis;
          Alcotest.test_case "child axis" `Quick test_child_axis;
          Alcotest.test_case "mixed axes" `Quick test_mixed_axes;
          Alcotest.test_case "content predicates" `Quick test_predicates_content;
          Alcotest.test_case "boolean predicates" `Quick test_predicates_boolean;
          Alcotest.test_case "positional predicates" `Quick test_position_predicate;
          Alcotest.test_case "union queries" `Quick test_union;
        ] );
      ( "xpath syntax",
        [
          Alcotest.test_case "print/parse roundtrip" `Quick test_xpath_to_string_roundtrip;
          Alcotest.test_case "edge cases" `Quick test_xpath_edge_cases;
          Alcotest.test_case "empty contains" `Quick test_xpath_empty_contains;
          Alcotest.test_case "parse errors" `Quick test_xpath_parse_errors;
        ] );
      ( "index",
        [
          Alcotest.test_case "equality lookup" `Quick test_index_eq_lookup;
          Alcotest.test_case "token lookup" `Quick test_index_token_lookup;
        ] );
      ( "collection",
        [
          Alcotest.test_case "basics" `Quick test_collection_basics;
          Alcotest.test_case "evaluation" `Quick test_collection_eval;
          Alcotest.test_case "indexed eval agrees with naive" `Quick
            test_collection_eval_index_agrees;
          Alcotest.test_case "xindice size limit" `Quick test_collection_size_limit;
          Alcotest.test_case "insert from xml" `Quick test_collection_add_xml;
          Alcotest.test_case "eq lookup and subtrees" `Quick
            test_collection_eq_lookup_and_subtrees;
        ] );
      ("database", [ Alcotest.test_case "facade" `Quick test_database ]);
      ( "persistence",
        [
          Alcotest.test_case "collection roundtrip" `Quick test_persist_collection;
          Alcotest.test_case "database roundtrip" `Quick test_persist_database;
          Alcotest.test_case "load errors" `Quick test_persist_errors;
          Alcotest.test_case "escaping content roundtrip" `Quick
            test_persist_escaping_roundtrip;
          Alcotest.test_case "aggregated load errors" `Quick
            test_persist_aggregated_errors;
        ] );
    ]
