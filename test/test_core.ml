(* Tests for the TOSS core: conversion functions, SEO contexts, the
   ontology-aware condition semantics (Section 5.1.1), query rewriting and
   the three-phase executor (Section 6). *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Algebra = Toss_tax.Algebra
module Collection = Toss_store.Collection
module Hierarchy = Toss_hierarchy.Hierarchy
module Ontology = Toss_ontology.Ontology
module Conversion = Toss_core.Conversion
module Seo = Toss_core.Seo
module Oes = Toss_core.Oes
module Toss_condition = Toss_core.Toss_condition
module Toss_algebra = Toss_core.Toss_algebra
module Rewrite = Toss_core.Rewrite
module Executor = Toss_core.Executor
module Workload = Toss_data.Workload

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Conversion functions                                                 *)
(* ------------------------------------------------------------------ *)

let test_conversion_identity () =
  checkb "identity always exists" true (Conversion.exists Conversion.empty ~from:"x" ~into:"x");
  checkb "identity converts" true
    (Conversion.convert Conversion.empty ~from:"x" ~into:"x" "v" = Some "v")

let test_conversion_direct_and_composed () =
  let t = Conversion.standard in
  checkb "direct" true (Conversion.exists t ~from:"int" ~into:"float");
  checkb "composed mm->m via cm" true (Conversion.exists t ~from:"mm" ~into:"m");
  checkb "no reverse" false (Conversion.exists t ~from:"float" ~into:"int");
  checkb "mm to m" true (Conversion.convert t ~from:"mm" ~into:"m" "2000" = Some "2");
  checkb "year to float path" true (Conversion.convert t ~from:"year" ~into:"float" "1999" = Some "1999")

let test_conversion_duplicate_rejected () =
  Alcotest.check_raises "duplicate registration"
    (Invalid_argument "Conversion.register: a -> b already registered") (fun () ->
      ignore
        (Conversion.empty
        |> Conversion.register ~from:"a" ~into:"b" Fun.id
        |> Conversion.register ~from:"a" ~into:"b" Fun.id))

let test_conversion_coherence () =
  (* Two paths a->c that agree. *)
  let ok =
    Conversion.empty
    |> Conversion.register ~from:"a" ~into:"b" (fun s -> s ^ "!")
    |> Conversion.register ~from:"b" ~into:"c" (fun s -> s ^ "?")
    |> Conversion.register ~from:"a" ~into:"c" (fun s -> s ^ "!?")
  in
  (match Conversion.check_coherence ok ~samples:[ ("a", "v") ] with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es));
  (* Two paths that disagree. *)
  let bad =
    Conversion.empty
    |> Conversion.register ~from:"a" ~into:"b" (fun s -> s ^ "!")
    |> Conversion.register ~from:"b" ~into:"c" (fun s -> s ^ "?")
    |> Conversion.register ~from:"a" ~into:"c" (fun s -> s ^ "XX")
  in
  match Conversion.check_coherence bad ~samples:[ ("a", "v") ] with
  | Ok () -> Alcotest.fail "incoherence not detected"
  | Error _ -> ()

let test_conversion_standard_coherent () =
  match
    Conversion.check_coherence Conversion.standard
      ~samples:[ ("mm", "3000"); ("year", "1999"); ("int", "5") ]
  with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

(* ------------------------------------------------------------------ *)
(* SEO contexts and the TOSS condition semantics                        *)
(* ------------------------------------------------------------------ *)

let db =
  Toss_xml.Parser.parse_exn
    {|<dblp>
        <inproceedings key="u1">
          <author>Jeffrey D. Ullman</author>
          <title>Principles of Database Systems</title>
          <booktitle>PODS</booktitle><year>1998</year>
        </inproceedings>
        <inproceedings key="u2">
          <author>J. D. Ullman</author>
          <title>Querying Semistructured Data</title>
          <booktitle>SIGMOD Conference</booktitle><year>1999</year>
        </inproceedings>
        <inproceedings key="w1">
          <author>Jennifer Widom</author>
          <title>Active Database Systems</title>
          <booktitle>ICML</booktitle><year>1999</year>
        </inproceedings>
      </dblp>|}

let seo =
  match
    Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0 [ Doc.of_tree db ]
  with
  | Ok seo -> seo
  | Error msg -> failwith msg

let test_seo_accessors () =
  checkb "eps" true (Seo.eps seo = 2.0);
  checkb "enhancement present" true (Seo.enhancement seo <> None);
  checkb "isa hierarchy non-empty" true (not (Hierarchy.is_empty (Seo.isa_hierarchy seo)));
  checkb "part-of from nesting" true (Seo.leq_part seo "author" "inproceedings");
  checkb "knows stored author" true (Seo.knows_term seo "Jeffrey D. Ullman")

let test_seo_similar () =
  checkb "initialized name" true (Seo.similar seo "J. D. Ullman" "Jeffrey D. Ullman");
  checkb "different people" false (Seo.similar seo "Jennifer Widom" "Jeffrey D. Ullman");
  checkb "identity" true (Seo.similar seo "anything at all" "anything at all");
  (* Fallback for strings outside the ontology. *)
  checkb "unknown pair via raw distance" true (Seo.similar seo "zzzxy" "zzzxx");
  checkb "unknown pair too far" false (Seo.similar seo "zzzxy" "qqqqq")

let test_seo_similar_terms () =
  let terms = Seo.similar_terms seo "Jeffrey D. Ullman" in
  checkb "expansion includes the initialized variant" true (List.mem "J. D. Ullman" terms);
  checkb "expansion excludes other people" false (List.mem "Jennifer Widom" terms)

let test_seo_isa () =
  checkb "venue below category" true (Seo.leq_isa seo "PODS" "database conference");
  checkb "category below conference" true
    (Seo.leq_isa seo "database conference" "conference");
  checkb "ICML not a database conference" false
    (Seo.leq_isa seo "ICML" "database conference");
  checkb "below set contains venues" true
    (List.mem "PODS" (Seo.isa_below seo "database conference"))

let env_for doc pairs label = Option.map (fun n -> (doc, n)) (List.assoc_opt label pairs)

let test_toss_condition_eval () =
  let doc = Doc.of_tree db in
  let authors = Doc.by_tag doc "author" in
  let env = env_for doc [ (2, List.nth authors 1) ] in
  (* node 2 is "J. D. Ullman" *)
  checkb "sim against canonical" true
    (Toss_condition.eval seo env (Condition.content_sim 2 "Jeffrey D. Ullman"));
  checkb "sim respects people" false
    (Toss_condition.eval seo env (Condition.content_sim 2 "Jennifer Widom"));
  let venues = Doc.by_tag doc "booktitle" in
  let env = env_for doc [ (3, List.hd venues) ] in
  checkb "isa through lexicon" true
    (Toss_condition.eval seo env (Condition.content_isa 3 "database conference"));
  checkb "isa negative" false
    (Toss_condition.eval seo env (Condition.content_isa 3 "machine learning conference"))

let test_toss_condition_part_of () =
  let doc = Doc.of_tree db in
  let authors = Doc.by_tag doc "author" in
  let env = env_for doc [ (2, List.hd authors) ] in
  checkb "tag part_of document root" true
    (Toss_condition.eval seo env
       (Condition.Part_of (Condition.Tag 2, Condition.Str "dblp")));
  checkb "tag part_of paper element" true
    (Toss_condition.eval seo env
       (Condition.Part_of (Condition.Tag 2, Condition.Str "inproceedings")))

let test_toss_condition_instance_below_above () =
  let doc = Doc.of_tree db in
  let years = Doc.by_tag doc "year" in
  let env = env_for doc [ (4, List.hd years) ] in
  (* 1998 has inferred primitive type year. *)
  checkb "instance_of primitive type" true
    (Toss_condition.eval seo env
       (Condition.Instance_of (Condition.Content 4, Condition.Str "year")));
  let venues = Doc.by_tag doc "booktitle" in
  let env = env_for doc [ (3, List.hd venues) ] in
  checkb "below = instance or subtype" true
    (Toss_condition.eval seo env
       (Condition.Below (Condition.Content 3, Condition.Str "conference")));
  checkb "above inverts below" true
    (Toss_condition.eval seo env
       (Condition.Above (Condition.Str "conference", Condition.Content 3)));
  checkb "subtype_of needs ontology terms" false
    (Toss_condition.eval seo env
       (Condition.Subtype_of (Condition.Str "no-such-term", Condition.Str "conference")))

let test_toss_condition_conversion_compare () =
  (* year 1998 vs int 1998: converted to a common type and equal. *)
  checkb "cross-type equality" true
    (Toss_condition.compare_converted seo Condition.Eq "1998" "1998");
  checkb "year vs float" true
    (Toss_condition.compare_converted seo Condition.Lt "1998" "1998.5");
  checkb "string comparison untouched" true
    (Toss_condition.compare_converted seo Condition.Eq "PODS" "PODS")

let test_well_typed () =
  checkb "convertible constants" true
    (Toss_condition.well_typed seo
       (Condition.Cmp (Condition.Str "1998", Condition.Le, Condition.Str "12.5")));
  checkb "non-atoms optimistic" true (Toss_condition.well_typed seo Condition.True)

(* ------------------------------------------------------------------ *)
(* TAX containment: every TAX answer is a TOSS answer                   *)
(* ------------------------------------------------------------------ *)

let ullman_pattern =
  Pattern.v
    (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2); Pattern.pc (Pattern.leaf 3) ])
    (Condition.conj
       [
         Condition.tag_eq 1 "inproceedings";
         Condition.tag_eq 2 "author";
         Condition.tag_eq 3 "booktitle";
         Condition.content_sim 2 "Jeffrey D. Ullman";
         Condition.content_isa 3 "PODS";
       ])

let test_toss_contains_tax () =
  let tax = Algebra.select ~pattern:ullman_pattern ~sl:[ 1 ] [ db ] in
  let toss = Toss_algebra.select seo ~pattern:ullman_pattern ~sl:[ 1 ] [ db ] in
  checkb "every TAX witness is a TOSS witness" true
    (List.for_all (fun t -> List.exists (Tree.equal t) toss) tax);
  checkb "TOSS finds at least as much" true (List.length toss >= List.length tax)

let test_toss_algebra_ops () =
  let c1 = [ Tree.leaf "x" "1" ] and c2 = [ Tree.leaf "x" "1"; Tree.leaf "x" "2" ] in
  checki "union" 2 (List.length (Toss_algebra.union c1 c2));
  checki "intersect" 1 (List.length (Toss_algebra.intersect c1 c2));
  checki "difference" 1 (List.length (Toss_algebra.difference c2 c1));
  checki "product" 2 (List.length (Toss_algebra.product c1 c2))

(* ------------------------------------------------------------------ *)
(* OES instances                                                        *)
(* ------------------------------------------------------------------ *)

let test_oes () =
  let oes = Oes.of_tree db in
  checkb "doc kept" true (Doc.size (Oes.doc oes) = Doc.size (Doc.of_tree db));
  checkb "ontology has part-of" true
    (Hierarchy.leq (Ontology.get Ontology.part_of (Oes.ontology oes)) "author"
       "inproceedings");
  let years = Doc.by_tag (Oes.doc oes) "year" in
  checkb "content type inferred" true
    (Oes.content_type oes (List.hd years) = Toss_xml.Value_type.Year);
  checkb "tags are strings" true
    (Oes.tag_type oes 0 = Toss_xml.Value_type.String)

(* ------------------------------------------------------------------ *)
(* Rewriting                                                            *)
(* ------------------------------------------------------------------ *)

let test_rewrite_label_queries () =
  let queries = Rewrite.label_queries ~mode:Rewrite.Toss seo ullman_pattern in
  checki "a query per label" 3 (List.length queries);
  let q2 = Toss_store.Xpath.to_string (List.assoc 2 queries) in
  (* The ~ expansion must turn into a disjunction of exact tests over the
     similar spellings. *)
  checkb "expansion mentions the variant" true
    (let needle = "J. D. Ullman" in
     let nh = String.length q2 and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub q2 i nn = needle || go (i + 1)) in
     go 0);
  (* In TAX mode the same label gets a single exact test. *)
  let tax_queries = Rewrite.label_queries ~mode:Rewrite.Tax seo ullman_pattern in
  let q2_tax = Toss_store.Xpath.to_string (List.assoc 2 tax_queries) in
  checks "tax keeps exact" "//inproceedings/author[.='Jeffrey D. Ullman']" q2_tax

let test_rewrite_isa_tag_expansion () =
  (* #1.tag isa paper expands into the tags below "paper". *)
  let p =
    Pattern.v (Pattern.leaf 1)
      (Condition.Isa (Condition.Tag 1, Condition.Str "paper"))
  in
  let queries = Rewrite.label_queries ~mode:Rewrite.Toss seo p in
  let q = Toss_store.Xpath.to_string (List.assoc 1 queries) in
  checkb "inproceedings among the tag options" true
    (let needle = "//inproceedings" in
     let nh = String.length q and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub q i nn = needle || go (i + 1)) in
     go 0)

let test_expand_condition () =
  let c = Condition.content_sim 2 "Jeffrey D. Ullman" in
  let expanded = Rewrite.expand_condition seo c in
  (* The expansion is a disjunction of equalities containing the variant. *)
  let atoms = Condition.atoms expanded in
  checkb "several exact atoms" true (List.length atoms >= 2);
  checkb "all are equalities" true
    (List.for_all
       (fun a -> match a with Condition.Cmp (_, Condition.Eq, _) -> true | _ -> false)
       atoms)

(* ------------------------------------------------------------------ *)
(* Executor: agreement with the in-memory algebra                       *)
(* ------------------------------------------------------------------ *)

let collection_of trees =
  let c = Collection.create "test" in
  List.iter (fun t -> ignore (Collection.add_document c t)) trees;
  Collection.snapshot c

let test_executor_select_agrees_with_algebra () =
  let coll = collection_of [ db ] in
  List.iter
    (fun mode ->
      let results, stats = Executor.select ~mode seo coll ~pattern:ullman_pattern ~sl:[ 1 ] in
      let reference =
        match mode with
        | Executor.Tax -> Algebra.select ~pattern:ullman_pattern ~sl:[ 1 ] [ db ]
        | Executor.Toss -> Toss_algebra.select seo ~pattern:ullman_pattern ~sl:[ 1 ] [ db ]
      in
      checkb "same cardinality" true (List.length results = List.length reference);
      checkb "same trees" true
        (List.for_all (fun t -> List.exists (Tree.equal t) reference) results);
      checkb "phases measured" true (Executor.total_s stats.Executor.phases >= 0.);
      checki "results counted" (List.length results) stats.Executor.n_results)
    [ Executor.Tax; Executor.Toss ]

let test_executor_index_independence () =
  let coll = collection_of [ db ] in
  let with_idx, _ = Executor.select ~use_index:true seo coll ~pattern:ullman_pattern ~sl:[] in
  let without, _ = Executor.select ~use_index:false seo coll ~pattern:ullman_pattern ~sl:[] in
  checkb "index does not change answers" true
    (List.length with_idx = List.length without
    && List.for_all (fun t -> List.exists (Tree.equal t) without) with_idx)

let test_executor_join () =
  let sigmod =
    Toss_xml.Parser.parse_exn
      {|<proceedings>
          <conference>Symposium on Principles of Database Systems</conference>
          <articles>
            <article key="s1"><title>Principles of Database Systems</title></article>
            <article key="s2"><title>Something Entirely Different</title></article>
          </articles>
        </proceedings>|}
  in
  let seo2 =
    match
      Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0
        [ Doc.of_tree db; Doc.of_tree sigmod ]
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  let pattern, sl = Toss_data.Workload.join_query () in
  let left = collection_of [ db ] in
  let right = collection_of [ sigmod ] in
  let results, stats = Executor.join seo2 left right ~pattern ~sl in
  (* u1's title equals s1's title; nothing else joins. *)
  checki "one join result" 1 (List.length results);
  Alcotest.(check (list (pair string string))) "key pair"
    [ ("u1", "s1") ]
    (Toss_data.Workload.result_key_pairs results);
  (* The compiled default issues no store queries; the interpreted
     pipeline records scans for both sides and must agree on results. *)
  checkb "compiled join issues no queries" true (stats.Executor.queries = []);
  let results_i, stats_i = Executor.join ~compile:false seo2 left right ~pattern ~sl in
  checkb "interpreted join agrees" true (results_i = results);
  checkb "queries recorded for both sides" true
    (List.length stats_i.Executor.queries >= 4);
  (* The in-memory TOSS join agrees. *)
  let reference = Toss_algebra.join seo2 ~pattern ~sl [ db ] [ sigmod ] in
  checki "agrees with algebra join" (List.length reference) (List.length results)

let test_executor_join_arity_check () =
  let bad = Pattern.v (Pattern.leaf 1) Condition.True in
  let coll = collection_of [ db ] in
  Alcotest.check_raises "root must have two children"
    (Invalid_argument "Executor.join: the pattern root must have exactly two children")
    (fun () -> ignore (Executor.join seo coll coll ~pattern:bad ~sl:[]))

exception Cancelled

let test_executor_compiled_cancellation () =
  let coll = collection_of [ db ] in
  (* The cooperative checkpoint fires once per arena node inside the
     compiled matcher's loop, so a check that trips after a few calls
     cancels the match mid-arena: the exception unwinds the whole
     select and no partial witnesses escape. *)
  let calls = ref 0 in
  let check () =
    incr calls;
    if !calls > 3 then raise Cancelled
  in
  (try
     let results, _ = Executor.select ~check seo coll ~pattern:ullman_pattern ~sl:[ 1 ] in
     Alcotest.failf "expected cancellation, got %d results" (List.length results)
   with Cancelled -> ());
  checkb "check was called inside the arena loop" true (!calls > 3);
  (* An unconditional check leaves the run untouched. *)
  let results, _ =
    Executor.select ~check:(fun () -> ()) seo coll ~pattern:ullman_pattern ~sl:[ 1 ]
  in
  let reference, _ = Executor.select seo coll ~pattern:ullman_pattern ~sl:[ 1 ] in
  checkb "benign check does not change answers" true (results = reference)

(* ------------------------------------------------------------------ *)
(* More rewrite coverage                                                *)
(* ------------------------------------------------------------------ *)

let test_rewrite_part_of_content () =
  (* part_of on content expands through the part-of hierarchy: the
     nesting-derived hierarchy knows author is part of inproceedings. *)
  let p =
    Pattern.v (Pattern.leaf 1)
      (Condition.Part_of (Condition.Content 1, Condition.Str "dblp"))
  in
  let queries = Rewrite.label_queries ~mode:Rewrite.Toss seo p in
  let q = Toss_store.Xpath.to_string (List.assoc 1 queries) in
  checkb "expansion generated" true (String.length q > String.length "//*")

let test_rewrite_contains_pushed () =
  let p =
    Pattern.v (Pattern.leaf 1)
      (Condition.And
         ( Condition.tag_eq 1 "title",
           Condition.Contains (Condition.Content 1, "Database") ))
  in
  let queries = Rewrite.label_queries ~mode:Rewrite.Toss seo p in
  checks "contains becomes a predicate" "//title[contains(.,'Database')]"
    (Toss_store.Xpath.to_string (List.assoc 1 queries))

let test_rewrite_max_expansion_degrades () =
  (* With max_expansion 1, the isa expansion cannot be pushed, so the
     query keeps only structure; correctness comes from assembly. *)
  let p =
    Pattern.v (Pattern.leaf 1)
      (Condition.And
         ( Condition.tag_eq 1 "booktitle",
           Condition.content_isa 1 "database conference" ))
  in
  let queries = Rewrite.label_queries ~mode:Rewrite.Toss ~max_expansion:1 seo p in
  checks "no predicate pushed" "//booktitle"
    (Toss_store.Xpath.to_string (List.assoc 1 queries));
  (* And the executor still answers correctly. *)
  let coll =
    let c = Toss_store.Collection.create "t" in
    ignore (Toss_store.Collection.add_document c db);
    Toss_store.Collection.snapshot c
  in
  let narrow, _ = Executor.select ~max_expansion:1 seo coll ~pattern:p ~sl:[] in
  let wide, _ = Executor.select seo coll ~pattern:p ~sl:[] in
  checki "same answers regardless of pushdown" (List.length wide) (List.length narrow)

(* ------------------------------------------------------------------ *)
(* Explain                                                              *)
(* ------------------------------------------------------------------ *)

module Explain = Toss_core.Explain

let test_explain () =
  let plan = Explain.explain seo ullman_pattern in
  checki "three label queries" 3 (List.length plan.Explain.label_queries);
  (* One ~ and one isa expansion. *)
  checki "two expansions" 2 (List.length plan.Explain.expansions);
  let sim = List.find (fun e -> e.Explain.operator = "~") plan.Explain.expansions in
  checkb "sim expansion has the variant" true
    (List.mem "J. D. Ullman" sim.Explain.terms);
  (* All atoms of this pattern are node-local conjuncts. *)
  checki "no residual atoms" 0 (List.length plan.Explain.residual_atoms);
  checkb "renders" true (String.length (Explain.to_string plan) > 50)

let test_explain_tax () =
  let plan = Explain.explain ~mode:Rewrite.Tax seo ullman_pattern in
  checki "no expansions under TAX" 0 (List.length plan.Explain.expansions);
  (* Cross-label atoms are residual. *)
  let join_pattern, _ = Toss_data.Workload.join_query () in
  let plan = Explain.explain seo join_pattern in
  checkb "cross-label sim is residual" true
    (List.exists
       (fun a ->
         let nh = String.length a in
         nh > 0
         && (let needle = "~" in
             let nn = String.length needle in
             let rec go i = i + nn <= nh && (String.sub a i nn = needle || go (i + 1)) in
             go 0))
       plan.Explain.residual_atoms)

(* ------------------------------------------------------------------ *)
(* Session facade                                                       *)
(* ------------------------------------------------------------------ *)

module Session = Toss_core.Session

let session_query = {|MATCH #1:inproceedings(/#2:author, /#3:booktitle)
  WHERE #2.content ~ "Jeffrey D. Ullman" AND #3.content isa "database conference"
  SELECT #1|}

let test_session_basics () =
  let s = Session.create ~metric:Workload.experiment_metric ~eps:2.0 () in
  Session.add_document s ~collection:"dblp" db;
  Alcotest.(check (list string)) "collections" [ "dblp" ] (Session.collection_names s);
  match Session.query s ~collection:"dblp" session_query with
  | Error msg -> Alcotest.fail msg
  | Ok answer ->
      checkb "finds both Ullman variants" true (List.length answer.Session.trees >= 2);
      checkb "stats attached" true (answer.Session.stats <> None)

let test_session_seo_cache_invalidation () =
  let s = Session.create ~metric:Workload.experiment_metric ~eps:2.0 () in
  Session.add_document s ~collection:"dblp" db;
  let seo1 = Result.get_ok (Session.seo s) in
  let seo1' = Result.get_ok (Session.seo s) in
  checkb "cached" true (seo1 == seo1');
  Session.add_document s ~collection:"dblp" (Tree.leaf "extra" "x");
  let seo2 = Result.get_ok (Session.seo s) in
  checkb "rebuilt after insert" true (not (seo1 == seo2))

let test_session_projection () =
  let s = Session.create ~metric:Workload.experiment_metric ~eps:2.0 () in
  Session.add_document s ~collection:"dblp" db;
  match
    Session.query s ~collection:"dblp"
      {|MATCH #1:inproceedings(/#2:author) PROJECT #2|}
  with
  | Error msg -> Alcotest.fail msg
  | Ok answer ->
      checki "three authors" 3 (List.length answer.Session.trees);
      checkb "no stats for projections" true (answer.Session.stats = None)

let test_session_join () =
  let s = Session.create ~metric:Workload.experiment_metric ~eps:2.0 () in
  Session.add_document s ~collection:"dblp" db;
  Session.add_document s ~collection:"pages"
    (Toss_xml.Parser.parse_exn
       {|<proceedings><articles>
           <article key="s1"><title>Principles of Database Systems</title></article>
         </articles></proceedings>|});
  let join_tql =
    {|MATCH #0:tax_prod_root(//#1:inproceedings(/#2:title), //#3:article(/#4:title))
      WHERE #2.content ~ #4.content
      SELECT #1, #3|}
  in
  match Session.join s ~left:"dblp" ~right:"pages" join_tql with
  | Error msg -> Alcotest.fail msg
  | Ok answer -> checki "one joined pair" 1 (List.length answer.Session.trees)

let test_session_errors () =
  let s = Session.create () in
  (match Session.query s ~collection:"nope" "MATCH #1" with
  | Error msg -> checkb "unknown collection reported" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected an error");
  Session.add_document s ~collection:"c" (Tree.leaf "a" "x");
  (match Session.query s ~collection:"c" "MATCH" with
  | Error msg -> checkb "tql error prefixed" true (String.length msg > 4)
  | Ok _ -> Alcotest.fail "expected a TQL error");
  match Session.add_xml s ~collection:"c" "<broken>" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected a parse error"

(* ------------------------------------------------------------------ *)
(* TQL                                                                  *)
(* ------------------------------------------------------------------ *)

module Tql = Toss_core.Tql

let test_tql_parse_basic () =
  let q =
    Tql.parse_exn
      {|MATCH #1:inproceedings(/#2:author, /#3:booktitle)
        WHERE #2.content ~ "Jeffrey D. Ullman"
          AND #3.content isa "database conference"
        SELECT #1|}
  in
  Alcotest.(check (list int)) "labels" [ 1; 2; 3 ] (Pattern.labels q.Tql.pattern);
  Alcotest.(check (list int)) "sl" [ 1 ] (Tql.sl q);
  (* The :tag shorthands became conjuncts, so the full condition has five
     atoms like the paper's workload queries. *)
  checki "five atoms" 5 (List.length (Condition.atoms q.Tql.pattern.Pattern.condition))

let test_tql_equivalent_to_builder () =
  (* The TQL form of the quickstart query returns the same answers. *)
  let q =
    Tql.parse_exn
      {|MATCH #1:inproceedings(/#2:author, /#3:booktitle)
        WHERE #2.content ~ "Jeffrey D. Ullman" AND #3.content isa "database conference"
        SELECT #1|}
  in
  let built = Toss_algebra.select seo ~pattern:ullman_pattern ~sl:[ 1 ] [ db ] in
  ignore built;
  let toss = Toss_algebra.select seo ~pattern:q.Tql.pattern ~sl:(Tql.sl q) [ db ] in
  checkb "finds the Ullman papers" true (List.length toss >= 2)

let test_tql_edges_and_ops () =
  let q =
    Tql.parse_exn
      {|MATCH #1(//#2, /#3)
        WHERE contains(#2.content, "XML") OR NOT (#3.tag = "year")
          AND #2.content <= 10 AND #3.content part_of "dblp"|}
  in
  (match (Pattern.find q.Tql.pattern 2, Pattern.parent_label q.Tql.pattern 2) with
  | Some _, Some (1, Pattern.Ad) -> ()
  | _ -> Alcotest.fail "expected an ad edge to #2");
  match Pattern.parent_label q.Tql.pattern 3 with
  | Some (1, Pattern.Pc) -> ()
  | _ -> Alcotest.fail "expected a pc edge to #3"

let test_tql_project () =
  let q = Tql.parse_exn "MATCH #1:dblp(//#2:author) PROJECT #2" in
  (match q.Tql.target with
  | Tql.Project [ 2 ] -> ()
  | _ -> Alcotest.fail "expected PROJECT #2");
  Alcotest.(check (list int)) "sl of a projection is empty" [] (Tql.sl q)

let test_tql_roundtrip () =
  List.iter
    (fun text ->
      let q = Tql.parse_exn text in
      let reprinted = Tql.to_string q in
      let q' = Tql.parse_exn reprinted in
      checkb
        (Printf.sprintf "roundtrip of %s" text)
        true
        (q.Tql.pattern = q'.Tql.pattern && q.Tql.target = q'.Tql.target))
    [
      "MATCH #1";
      "MATCH #1(/#2, //#3) SELECT #2, #3";
      {|MATCH #1 WHERE #1.tag = "a" OR (#1.content != "b" AND NOT (#1.content > "c"))|};
      {|MATCH #1(/#2) WHERE #2.content ~ "x" AND #1.content above "org" PROJECT #2|};
      {|MATCH #1 WHERE contains(#1.content, "net") AND #1.content instance_of "year"|};
    ]

let test_tql_errors () =
  List.iter
    (fun text ->
      match Tql.parse text with
      | Ok _ -> Alcotest.fail ("expected a parse error: " ^ text)
      | Error _ -> ())
    [
      "";
      "MATCH";
      "MATCH #1(/#1)";
      "MATCH #1 WHERE";
      "MATCH #1 WHERE #2.tag =";
      "MATCH #1 SELECT";
      "MATCH #1 WHERE #1.label = \"x\"";
      "MATCH #1 trailing";
      {|MATCH #1 WHERE #1.content ~ "unterminated|};
    ]

let () =
  Alcotest.run "toss_core"
    [
      ( "conversion",
        [
          Alcotest.test_case "identity" `Quick test_conversion_identity;
          Alcotest.test_case "direct and composed" `Quick test_conversion_direct_and_composed;
          Alcotest.test_case "duplicates rejected" `Quick test_conversion_duplicate_rejected;
          Alcotest.test_case "coherence checking" `Quick test_conversion_coherence;
          Alcotest.test_case "standard registry coherent" `Quick
            test_conversion_standard_coherent;
        ] );
      ( "seo",
        [
          Alcotest.test_case "accessors" `Quick test_seo_accessors;
          Alcotest.test_case "similar" `Quick test_seo_similar;
          Alcotest.test_case "similar_terms expansion" `Quick test_seo_similar_terms;
          Alcotest.test_case "isa" `Quick test_seo_isa;
        ] );
      ( "toss conditions",
        [
          Alcotest.test_case "sim and isa" `Quick test_toss_condition_eval;
          Alcotest.test_case "part_of" `Quick test_toss_condition_part_of;
          Alcotest.test_case "instance_of, below, above" `Quick
            test_toss_condition_instance_below_above;
          Alcotest.test_case "conversion-aware comparison" `Quick
            test_toss_condition_conversion_compare;
          Alcotest.test_case "well-typedness" `Quick test_well_typed;
          Alcotest.test_case "TOSS answers contain TAX answers" `Quick test_toss_contains_tax;
          Alcotest.test_case "set and product operators" `Quick test_toss_algebra_ops;
          Alcotest.test_case "OES instances" `Quick test_oes;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "label queries" `Quick test_rewrite_label_queries;
          Alcotest.test_case "isa tag expansion" `Quick test_rewrite_isa_tag_expansion;
          Alcotest.test_case "condition expansion" `Quick test_expand_condition;
          Alcotest.test_case "part_of content expansion" `Quick
            test_rewrite_part_of_content;
          Alcotest.test_case "contains pushdown" `Quick test_rewrite_contains_pushed;
          Alcotest.test_case "expansion cap degrades gracefully" `Quick
            test_rewrite_max_expansion_degrades;
        ] );
      ( "executor",
        [
          Alcotest.test_case "select agrees with the algebra" `Quick
            test_executor_select_agrees_with_algebra;
          Alcotest.test_case "index independence" `Quick test_executor_index_independence;
          Alcotest.test_case "join across two stores" `Quick test_executor_join;
          Alcotest.test_case "join arity check" `Quick test_executor_join_arity_check;
          Alcotest.test_case "compiled mid-arena cancellation" `Quick
            test_executor_compiled_cancellation;
        ] );
      ( "session",
        [
          Alcotest.test_case "query through a session" `Quick test_session_basics;
          Alcotest.test_case "seo cache invalidation" `Quick
            test_session_seo_cache_invalidation;
          Alcotest.test_case "projection" `Quick test_session_projection;
          Alcotest.test_case "join" `Quick test_session_join;
          Alcotest.test_case "errors" `Quick test_session_errors;
        ] );
      ( "explain",
        [
          Alcotest.test_case "plan contents" `Quick test_explain;
          Alcotest.test_case "tax mode has no expansions" `Quick test_explain_tax;
        ] );
      ( "tql",
        [
          Alcotest.test_case "basic parse" `Quick test_tql_parse_basic;
          Alcotest.test_case "equivalent to built pattern" `Quick
            test_tql_equivalent_to_builder;
          Alcotest.test_case "edge kinds and operators" `Quick test_tql_edges_and_ops;
          Alcotest.test_case "projection target" `Quick test_tql_project;
          Alcotest.test_case "print/parse roundtrip" `Quick test_tql_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_tql_errors;
        ] );
    ]
