(* Tests for the shared JSON module: the writer (new in the server PR)
   and its round-trip contract with the reader. The reader itself is
   covered by test_eval (through the deprecated [Toss_eval.Json_lite]
   alias, which must keep working). *)

module J = Toss_json

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let test_escape () =
  checks "plain" "abc" (J.escape "abc");
  checks "quote" "say \\\"hi\\\"" (J.escape "say \"hi\"");
  checks "backslash" "a\\\\b" (J.escape "a\\b");
  checks "newline tab cr" "a\\nb\\tc\\rd" (J.escape "a\nb\tc\rd");
  checks "control as unicode" "\\u0000\\u001f" (J.escape "\x00\x1f");
  checks "utf8 passthrough" "caf\xc3\xa9" (J.escape "caf\xc3\xa9");
  checks "quoted" "\"a\\\"b\"" (J.quote "a\"b")

let test_to_string () =
  checks "null" "null" (J.to_string J.Null);
  checks "bools" "[true,false]" (J.to_string (J.Arr [ J.Bool true; J.Bool false ]));
  checks "integral floats have no point" "42" (J.to_string (J.Num 42.));
  checks "negative zero is zero" "-0" (J.to_string (J.Num (-0.)));
  checks "fractional" "1.5" (J.to_string (J.Num 1.5));
  checks "non-finite is null" "[null,null,null]"
    (J.to_string (J.Arr [ J.Num nan; J.Num infinity; J.Num neg_infinity ]));
  checks "empty obj" "{}" (J.to_string (J.Obj []));
  checks "nested"
    "{\"a\":[1,{\"b\":\"x\\ny\"}]}"
    (J.to_string
       (J.Obj [ ("a", J.Arr [ J.Num 1.; J.Obj [ ("b", J.Str "x\ny") ] ]) ]));
  checks "member order preserved" "{\"z\":1,\"a\":2}"
    (J.to_string (J.Obj [ ("z", J.Num 1.); ("a", J.Num 2.) ]))

let test_roundtrip () =
  let values =
    [
      J.Null;
      J.Bool true;
      J.Num 0.;
      J.Num (-17.);
      J.Num 3.141592653589793;
      J.Num 1e-9;
      J.Num 1e20;
      J.Str "";
      J.Str "with \"quotes\" and \\slashes\\ and \n newlines";
      J.Str "control \x01 char";
      J.Arr [];
      J.Obj [];
      J.Obj
        [
          ("trees", J.Arr [ J.Str "<a b=\"c\">x &amp; y</a>" ]);
          ("count", J.Num 1.);
          ("nested", J.Obj [ ("deep", J.Arr [ J.Null; J.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = J.to_string v in
      match J.parse s with
      | Error msg -> Alcotest.fail (Printf.sprintf "%s: %s" s msg)
      | Ok v' -> checkb (Printf.sprintf "round-trip %s" s) true (v = v'))
    values

let prop_roundtrip =
  (* Random value trees: to_string and parse must be inverses. *)
  let gen =
    QCheck2.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [
                return J.Null;
                map (fun b -> J.Bool b) bool;
                map (fun f -> J.Num f) (float_bound_inclusive 1e6);
                map (fun i -> J.Num (float_of_int i)) (int_range (-1000) 1000);
                map (fun s -> J.Str s) (string_size (int_range 0 12));
              ]
          in
          if n <= 0 then leaf
          else
            oneof
              [
                leaf;
                map (fun l -> J.Arr l) (list_size (int_range 0 4) (self (n / 2)));
                map
                  (fun l -> J.Obj l)
                  (list_size (int_range 0 4)
                     (pair (string_size (int_range 0 6)) (self (n / 2))));
              ]))
  in
  QCheck2.Test.make ~count:200 ~name:"to_string/parse round-trip" gen (fun v ->
      J.parse (J.to_string v) = Ok v)

let test_unicode_escapes () =
  let ok input expect =
    match J.parse input with
    | Ok (J.Str got) -> checks input expect got
    | Ok _ -> Alcotest.fail (input ^ ": decoded to a non-string")
    | Error msg -> Alcotest.fail (input ^ ": " ^ msg)
  in
  let rejected input =
    checkb (input ^ " rejected") true (Result.is_error (J.parse input))
  in
  ok {|"\u0041"|} "A";
  ok {|"\u00e9"|} "\xc3\xa9";
  ok {|"\u20ac"|} "\xe2\x82\xac";
  (* A surrogate pair decodes to one 4-byte UTF-8 sequence, not two
     3-byte surrogate code points (CESU-8). *)
  ok {|"\ud83d\ude00"|} "\xf0\x9f\x98\x80";
  ok {|"\ud834\udd1e"|} "\xf0\x9d\x84\x9e";
  ok {|"a\ud83d\ude00b"|} "a\xf0\x9f\x98\x80b";
  (* lone high surrogate *)
  rejected {|"\ud83d"|};
  rejected {|"\ud83dxxxx"|};
  (* high surrogate paired with a non-low escape *)
  rejected {|"\ud83dA"|};
  (* lone low surrogate *)
  rejected {|"\ude00"|};
  (* int_of_string would admit underscores *)
  rejected {|"\u1_2f"|};
  rejected {|"\u-123"|};
  rejected {|"\u12"|}

let test_accessors () =
  let v = J.parse_exn {|{"a": 1, "b": [true, "x"], "a": 2}|} in
  checkb "first duplicate wins" true (Option.bind (J.member "a" v) J.to_int = Some 1);
  checkb "missing member" true (J.member "zz" v = None);
  checkb "to_int truncates" true (J.to_int (J.Num 3.9) = Some 3);
  checkb "to_int on non-num" true (J.to_int (J.Str "3") = None)

let () =
  Alcotest.run "toss_json"
    [
      ( "writer",
        [
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_unicode_escapes;
          Alcotest.test_case "accessors" `Quick test_accessors;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
