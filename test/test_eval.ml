(* Tests for precision / recall / quality metrics and the bench helpers. *)

module Quality = Toss_eval.Quality
module Bench_util = Toss_eval.Bench_util

let checkf = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_counts () =
  let c = Quality.counts ~correct:[ "a"; "b"; "c" ] ~returned:[ "b"; "c"; "d" ] in
  checki "tp" 2 c.Quality.tp;
  checki "fp" 1 c.Quality.fp;
  checki "fn" 1 c.Quality.fn

let test_counts_dedup () =
  let c = Quality.counts ~correct:[ "a"; "a" ] ~returned:[ "a"; "a"; "a" ] in
  checki "tp deduped" 1 c.Quality.tp;
  checki "fp deduped" 0 c.Quality.fp

let test_precision_recall () =
  checkf "precision" (2. /. 3.)
    (Quality.precision ~correct:[ "a"; "b"; "c" ] ~returned:[ "b"; "c"; "d" ]);
  checkf "recall" (2. /. 3.)
    (Quality.recall ~correct:[ "a"; "b"; "c" ] ~returned:[ "b"; "c"; "d" ]);
  checkf "perfect" 1.0 (Quality.precision ~correct:[ "a" ] ~returned:[ "a" ]);
  checkf "all wrong" 0.0 (Quality.precision ~correct:[ "a" ] ~returned:[ "b" ])

let test_edge_conventions () =
  (* TAX's empty answers must read as precision 1 (the paper's headline
     "TAX always gets 100% precision"). *)
  checkf "empty answer precision 1" 1.0 (Quality.precision ~correct:[ "a" ] ~returned:[]);
  checkf "empty answer recall 0" 0.0 (Quality.recall ~correct:[ "a" ] ~returned:[]);
  checkf "nothing correct recall 1" 1.0 (Quality.recall ~correct:[] ~returned:[ "x" ]);
  checkf "nothing correct precision 0" 0.0 (Quality.precision ~correct:[] ~returned:[ "x" ])

let test_quality () =
  checkf "geometric mean" (sqrt 0.5) (Quality.quality ~precision:1.0 ~recall:0.5);
  checkf "zero recall" 0.0 (Quality.quality ~precision:1.0 ~recall:0.0);
  let p, r, q = Quality.evaluate ~correct:[ "a"; "b" ] ~returned:[ "a" ] in
  checkf "evaluate precision" 1.0 p;
  checkf "evaluate recall" 0.5 r;
  checkf "evaluate quality" (sqrt 0.5) q

let test_f1 () =
  checkf "balanced" 0.5 (Quality.f1 ~precision:0.5 ~recall:0.5);
  checkf "degenerate" 0.0 (Quality.f1 ~precision:0.0 ~recall:0.0)

let test_mean () =
  checkf "empty" 0.0 (Quality.mean []);
  checkf "values" 2.0 (Quality.mean [ 1.0; 2.0; 3.0 ])

let test_time () =
  let x, t = Bench_util.time (fun () -> 42) in
  checki "result passed through" 42 x;
  checkb "non-negative" true (t >= 0.);
  let x, t = Bench_util.time_median ~runs:3 (fun () -> 7) in
  checki "median result" 7 x;
  checkb "median non-negative" true (t >= 0.)

let test_formatting () =
  Alcotest.(check string) "seconds" "0.1235" (Bench_util.fs 0.12345);
  Alcotest.(check string) "two decimals" "3.14" (Bench_util.f2 3.14159);
  Alcotest.(check string) "three decimals" "0.333" (Bench_util.f3 (1. /. 3.))

module Series = Toss_eval.Series

let sample_series =
  Series.v ~name:"fig"
    ~columns:[ "x"; "tax"; "toss" ]
    [ [ "1"; "0.1"; "0.2" ]; [ "2"; "0.3"; "0.4" ] ]

let test_series_csv () =
  Alcotest.(check string) "csv" "x,tax,toss\n1,0.1,0.2\n2,0.3,0.4\n"
    (Series.to_csv sample_series)

let test_series_escaping () =
  let s =
    Series.v ~name:"esc" ~columns:[ "a" ] [ [ "plain" ]; [ "with,comma" ]; [ "say \"hi\"" ] ]
  in
  Alcotest.(check string) "quoted fields" "a\nplain\n\"with,comma\"\n\"say \"\"hi\"\"\"\n"
    (Series.to_csv s)

let test_series_validation () =
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Series.v: row 0 has 1 fields, header has 2") (fun () ->
      ignore (Series.v ~name:"x" ~columns:[ "a"; "b" ] [ [ "1" ] ]));
  Alcotest.check_raises "empty name" (Invalid_argument "Series.v: empty name")
    (fun () -> ignore (Series.v ~name:"" ~columns:[] []))

let temp_dir () =
  let dir = Filename.temp_file "toss_eval" "" in
  Sys.remove dir;
  dir

let test_series_save () =
  let dir = temp_dir () in
  let path = Series.save_csv ~dir sample_series in
  checkb "file exists" true (Sys.file_exists path);
  let paths = Series.save_all ~dir [ sample_series ] in
  checki "csv, gp and json" 3 (List.length paths);
  checkb "writes the json" true
    (List.exists (fun p -> Filename.check_suffix p ".json") paths)

let test_series_gnuplot () =
  let gp = Series.gnuplot_script sample_series in
  let has needle =
    let nh = String.length gp and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub gp i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "reads the csv" true (has "fig.csv");
  checkb "plots both value columns" true (has "using 1:2" && has "using 1:3")

module Json = Toss_eval.Json_lite
module Baseline = Toss_eval.Baseline

let test_json_values () =
  let p = Json.parse_exn in
  checkb "null" true (p "null" = Json.Null);
  checkb "bools" true (p "true" = Json.Bool true && p "false" = Json.Bool false);
  checkf "int" 42. (Option.get (Json.to_num (p "42")));
  checkf "negative exponent" 1.5e-3 (Option.get (Json.to_num (p "1.5e-3")));
  Alcotest.(check string) "string" "hi" (Option.get (Json.to_str (p "\"hi\"")));
  checkb "whitespace tolerated" true (p "  [ 1 , 2 ]  " = Json.Arr [ Json.Num 1.; Json.Num 2. ]);
  checkb "empty containers" true (p "[]" = Json.Arr [] && p "{}" = Json.Obj [])

let test_json_escapes () =
  Alcotest.(check string) "standard escapes" "a\"b\\c\nd\te"
    (Option.get (Json.to_str (Json.parse_exn {|"a\"b\\c\nd\te"|})));
  Alcotest.(check string) "unicode escape to utf-8" "\xc3\xa9"
    (Option.get (Json.to_str (Json.parse_exn {|"\u00e9"|})))

let test_json_nesting_and_member () =
  let j = Json.parse_exn {|{"a":{"b":[1,{"c":true}]},"a":2}|} in
  let b = Option.get (Option.bind (Json.member "a" j) (Json.member "b")) in
  (match Json.to_list b with
  | Some [ one; obj ] ->
      checkf "array element" 1. (Option.get (Json.to_num one));
      checkb "nested bool" true
        (Option.get (Option.bind (Json.member "c" obj) Json.to_bool))
  | _ -> Alcotest.fail "expected a two-element array");
  checkb "member returns the first duplicate" true
    (Json.member "a" j <> Some (Json.Num 2.))

let test_json_errors () =
  let fails s = match Json.parse s with Error _ -> true | Ok _ -> false in
  checkb "empty input" true (fails "");
  checkb "trailing garbage" true (fails "1 2");
  checkb "unterminated string" true (fails "\"abc");
  checkb "missing bracket" true (fails "[1,2");
  checkb "bare word" true (fails "nope")

let sample_baseline =
  Baseline.v ~label:"suite"
    [
      ("fast", { Baseline.median_s = 0.001; runs = 5 });
      ("slow", { Baseline.median_s = 0.5; runs = 5 });
    ]

let test_baseline_roundtrip () =
  match Baseline.of_json (Baseline.to_json sample_baseline) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok b ->
      Alcotest.(check string) "label" sample_baseline.Baseline.label b.Baseline.label;
      checki "entries" 2 (List.length b.Baseline.entries);
      let fast = List.assoc "fast" b.Baseline.entries in
      checkb "median survives" true (abs_float (fast.Baseline.median_s -. 0.001) < 1e-9);
      checki "runs survive" 5 fast.Baseline.runs

let test_baseline_save_load () =
  let path = Filename.temp_file "toss_baseline" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Baseline.save ~path sample_baseline;
  match Baseline.load ~path with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok b -> checki "entries survive the disk" 2 (List.length b.Baseline.entries)

let current ~factor =
  Baseline.v ~label:"suite"
    (List.map
       (fun (name, (e : Baseline.entry)) ->
         (name, { e with Baseline.median_s = e.Baseline.median_s *. factor }))
       sample_baseline.Baseline.entries)

let test_gate_passes_within_tolerance () =
  let verdicts, ok =
    Baseline.compare_runs ~baseline:sample_baseline ~current:(current ~factor:1.1) ()
  in
  checkb "10% slower passes at 20% tolerance" true ok;
  checki "one verdict per experiment" 2 (List.length verdicts);
  checkb "ratios recorded" true
    (List.for_all (fun v -> abs_float (v.Baseline.ratio -. 1.1) < 1e-6) verdicts)

let test_gate_fails_on_regression () =
  let verdicts, ok =
    Baseline.compare_runs ~baseline:sample_baseline ~current:(current ~factor:2.0) ()
  in
  checkb "2x slowdown fails" true (not ok);
  checkb "every experiment flagged" true
    (List.for_all (fun v -> not v.Baseline.ok) verdicts)

let test_gate_tolerance_is_a_knob () =
  let _, ok =
    Baseline.compare_runs ~tolerance:1.5 ~baseline:sample_baseline
      ~current:(current ~factor:2.0) ()
  in
  checkb "2x passes at 150% tolerance" true ok;
  let _, strict =
    Baseline.compare_runs ~tolerance:0.05 ~baseline:sample_baseline
      ~current:(current ~factor:1.1) ()
  in
  checkb "10% fails at 5% tolerance" true (not strict)

let test_gate_missing_experiment_fails () =
  let partial =
    Baseline.v ~label:"suite" [ ("fast", { Baseline.median_s = 0.001; runs = 5 }) ]
  in
  let verdicts, ok =
    Baseline.compare_runs ~baseline:sample_baseline ~current:partial ()
  in
  checkb "missing experiment fails the gate" true (not ok);
  let missing = List.find (fun v -> v.Baseline.name = "slow") verdicts in
  checkb "its current time is nan" true (Float.is_nan missing.Baseline.current_s);
  (* Extra current-only experiments have nothing to regress against. *)
  let _, ok =
    Baseline.compare_runs ~baseline:partial ~current:sample_baseline ()
  in
  checkb "superset current passes" true ok

let () =
  Alcotest.run "toss_eval"
    [
      ( "quality",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "set semantics" `Quick test_counts_dedup;
          Alcotest.test_case "precision and recall" `Quick test_precision_recall;
          Alcotest.test_case "edge conventions" `Quick test_edge_conventions;
          Alcotest.test_case "quality" `Quick test_quality;
          Alcotest.test_case "f1" `Quick test_f1;
          Alcotest.test_case "mean" `Quick test_mean;
        ] );
      ( "bench utilities",
        [
          Alcotest.test_case "timing" `Quick test_time;
          Alcotest.test_case "formatting" `Quick test_formatting;
        ] );
      ( "series",
        [
          Alcotest.test_case "csv rendering" `Quick test_series_csv;
          Alcotest.test_case "csv escaping" `Quick test_series_escaping;
          Alcotest.test_case "validation" `Quick test_series_validation;
          Alcotest.test_case "save" `Quick test_series_save;
          Alcotest.test_case "gnuplot script" `Quick test_series_gnuplot;
        ] );
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "nesting and member" `Quick test_json_nesting_and_member;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "baseline gate",
        [
          Alcotest.test_case "json round trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "save and load" `Quick test_baseline_save_load;
          Alcotest.test_case "passes within tolerance" `Quick
            test_gate_passes_within_tolerance;
          Alcotest.test_case "fails on regression" `Quick test_gate_fails_on_regression;
          Alcotest.test_case "tolerance knob" `Quick test_gate_tolerance_is_a_knob;
          Alcotest.test_case "missing experiment" `Quick
            test_gate_missing_experiment_fails;
        ] );
    ]
