(* Tests for the query server: wire protocol, result cache, worker
   pool, engine semantics (deadlines, cache invalidation, durable
   hydration), and a live-socket concurrency stress test whose every
   answer is replayed against a single-threaded engine. *)

module J = Toss_json
module Protocol = Toss_server.Protocol
module Cache = Toss_server.Cache
module Pool = Toss_server.Pool
module Engine = Toss_server.Engine
module Server = Toss_server.Server
module Client = Toss_server.Client
module Session = Toss_core.Session
module Executor = Toss_core.Executor
module Parser = Toss_xml.Parser
module Tree = Toss_xml.Tree
module Metrics = Toss_obs.Metrics
module Transport = Toss_server.Transport
module Shard_map = Toss_shard.Shard_map
module Router = Toss_shard.Router
module Loadgen = Toss_shard.Loadgen

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let temp_name prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

(* ------------------------------------------------------------------ *)
(* Protocol                                                             *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let envs =
    [
      { Protocol.id = None; deadline_ms = None; trace_id = None; allow_partial = false; request = Protocol.Ping };
      {
        Protocol.id = Some 7;
        deadline_ms = Some 250;
        trace_id = Some "req-7";
        allow_partial = false;
        request = Protocol.Stats;
      };
      {
        Protocol.id = Some 1;
        deadline_ms = None;
        trace_id = None;
        allow_partial = false;
        request = Protocol.Insert { collection = "bib"; xml = "<a b=\"c\">x</a>" };
      };
      {
        Protocol.id = None;
        deadline_ms = Some 10;
        trace_id = Some "0123456789abcdef";
        allow_partial = false;
        request =
          Protocol.Query
            {
              collection = "bib";
              tql = "MATCH #1:a SELECT #1";
              mode = Executor.Tax;
              cache = false;
            };
      };
      {
        Protocol.id = Some 3;
        deadline_ms = None;
        trace_id = None;
        allow_partial = false;
        request =
          Protocol.Explain
            { collection = "c"; tql = "MATCH #1:a SELECT #1"; mode = Executor.Toss };
      };
      { Protocol.id = None; deadline_ms = None; trace_id = None; allow_partial = false; request = Protocol.Shutdown };
      { Protocol.id = None; deadline_ms = None; trace_id = None; allow_partial = false; request = Protocol.Metrics };
    ]
  in
  List.iter
    (fun env ->
      let line = Protocol.request_to_line env in
      match Protocol.parse_request line with
      | Error e -> Alcotest.fail (line ^ ": " ^ e.Protocol.message)
      | Ok env' -> checkb ("round-trip " ^ line) true (env = env'))
    envs

let code_of = function
  | Error e -> Protocol.code_name e.Protocol.code
  | Ok _ -> "ok"

let test_protocol_errors () =
  checks "not json" "parse_error" (code_of (Protocol.parse_request "nope"));
  checks "not an object" "bad_request" (code_of (Protocol.parse_request "[1]"));
  checks "no op" "bad_request" (code_of (Protocol.parse_request "{}"));
  checks "unknown op" "bad_request"
    (code_of (Protocol.parse_request {|{"op":"frobnicate"}|}));
  checks "missing field" "bad_request"
    (code_of (Protocol.parse_request {|{"op":"insert","collection":"c"}|}));
  checks "wrong type" "bad_request"
    (code_of (Protocol.parse_request {|{"op":"query","collection":"c","tql":3}|}));
  checks "bad mode" "bad_request"
    (code_of
       (Protocol.parse_request
          {|{"op":"query","collection":"c","tql":"q","mode":"turbo"}|}))

let test_response_roundtrip () =
  let responses =
    [
      Protocol.response ~id:4 (Ok (J.Obj [ ("pong", J.Bool true) ]));
      Protocol.response ~trace_id:"0123456789abcdef" ~server_ms:1.25
        ~queue_ms:0.5
        (Ok (J.Obj [ ("pong", J.Bool true) ]));
      Protocol.response (Error (Protocol.error Protocol.Overloaded "queue full"));
    ]
  in
  List.iter
    (fun r ->
      match Protocol.parse_response (Protocol.response_to_line r) with
      | Error msg -> Alcotest.fail msg
      | Ok r' -> checkb "response round-trip" true (r = r'))
    responses

(* ------------------------------------------------------------------ *)
(* Cache                                                                *)
(* ------------------------------------------------------------------ *)

let key ?(version = 1) ?(mode = "toss") tql =
  { Cache.collection = "c"; version; config = "eps=2"; mode; tql }

let test_cache_basics () =
  let c = Cache.create ~capacity:2 () in
  checkb "cold miss" true (Cache.find c (key "q1") = None);
  Cache.add c (key "q1") (J.Str "r1");
  checkb "hit" true (Cache.find c (key "q1") = Some (J.Str "r1"));
  checkb "version isolates" true (Cache.find c (key ~version:2 "q1") = None);
  checkb "mode isolates" true (Cache.find c (key ~mode:"tax" "q1") = None);
  Cache.add c (key "q2") (J.Str "r2");
  Cache.add c (key "q3") (J.Str "r3");
  (* capacity 2: q1 was oldest and is gone *)
  checki "bounded" 2 (Cache.size c);
  checkb "fifo evicted q1" true (Cache.find c (key "q1") = None);
  checkb "q3 present" true (Cache.find c (key "q3") = Some (J.Str "r3"));
  Cache.invalidate c ~collection:"c";
  checki "invalidate drops all versions" 0 (Cache.size c);
  let off = Cache.create ~capacity:0 () in
  Cache.add off (key "q1") (J.Str "r");
  checkb "capacity 0 stores nothing" true (Cache.find off (key "q1") = None)

let test_cache_order_bounded () =
  (* Regression: under a query→insert interleaving the table never
     fills, so invalidated keys used to leak in the eviction queue for
     the life of the server. *)
  let c = Cache.create ~capacity:8 () in
  for v = 1 to 200 do
    Cache.add c (key ~version:v "q") (J.Str "r");
    Cache.invalidate c ~collection:"c"
  done;
  checki "table empty after invalidations" 0 (Cache.size c);
  checkb "eviction queue stays bounded" true
    (Cache.queue_length c <= (2 * 8) + 16);
  Cache.add c (key "q1") (J.Str "r1");
  Cache.add c (key "q2") (J.Str "r2");
  checki "live entries keep one slot each" 2 (Cache.queue_length c)

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_jobs () =
  let pool = Pool.create ~domains:2 ~max_queue:64 in
  let lock = Mutex.create () in
  let count = ref 0 in
  for _ = 1 to 20 do
    match
      Pool.submit pool (fun ~queue_wait_s ->
          Mutex.lock lock;
          if queue_wait_s >= 0. then incr count;
          Mutex.unlock lock)
    with
    | Pool.Accepted -> ()
    | Pool.Overloaded | Pool.Stopped -> Alcotest.fail "unexpected refusal"
  done;
  Pool.stop pool;
  checki "all accepted jobs ran before stop returned" 20 !count;
  checkb "stopped pool refuses" true
    (Pool.submit pool (fun ~queue_wait_s:_ -> ()) = Pool.Stopped)

let test_pool_sheds () =
  (* No domains, no queue: admission control is the whole story. *)
  let pool = Pool.create ~domains:0 ~max_queue:0 in
  let noop ~queue_wait_s:_ = () in
  checkb "shed" true (Pool.submit pool noop = Pool.Overloaded);
  Pool.stop pool;
  (* One slot, no domains: first queues, second sheds. *)
  let pool = Pool.create ~domains:0 ~max_queue:1 in
  checkb "first queues" true (Pool.submit pool noop = Pool.Accepted);
  checkb "second sheds" true (Pool.submit pool noop = Pool.Overloaded)

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let paper i =
  Printf.sprintf "<paper><author>Name%d</author><title>T%d</title></paper>" i i

let tql = "MATCH #1:paper(/#2:author) WHERE #2.content ~ \"Name1\" SELECT #1"

let exec_ok engine request =
  match Engine.exec engine ~deadline:None request with
  | Ok payload -> payload
  | Error e -> Alcotest.fail (Protocol.code_name e.Protocol.code ^ ": " ^ e.Protocol.message)

let query_request ?(cache = true) tql =
  Protocol.Query { collection = "bib"; tql; mode = Executor.Toss; cache }

let member_str name payload = Option.bind (J.member name payload) J.to_str
let member_int name payload = Option.bind (J.member name payload) J.to_int

let test_engine_cache_and_invalidation () =
  let engine = Result.get_ok (Engine.create ()) in
  (match Engine.exec engine ~deadline:None (query_request tql) with
  | Error e -> checks "unknown collection" "unknown_collection" (Protocol.code_name e.Protocol.code)
  | Ok _ -> Alcotest.fail "expected unknown_collection");
  let ins =
    exec_ok engine (Protocol.Insert { collection = "bib"; xml = paper 1 })
  in
  checkb "insert returns doc_id" true (member_int "doc_id" ins = Some 0);
  checkb "insert returns version" true (member_int "version" ins = Some 1);
  let r1 = exec_ok engine (query_request tql) in
  checkb "first query misses" true (member_str "cache" r1 = Some "miss");
  checkb "one result" true (member_int "count" r1 = Some 1);
  let r2 = exec_ok engine (query_request tql) in
  checkb "second query hits" true (member_str "cache" r2 = Some "hit");
  checkb "hit payload agrees" true
    (member_int "count" r2 = member_int "count" r1);
  let r3 = exec_ok engine (query_request ~cache:false tql) in
  checkb "cache:false bypasses" true (member_str "cache" r3 = Some "miss");
  ignore (exec_ok engine (Protocol.Insert { collection = "bib"; xml = paper 2 }));
  let r4 = exec_ok engine (query_request tql) in
  checkb "insert invalidates" true (member_str "cache" r4 = Some "miss");
  checkb "new version visible" true (member_int "version" r4 = Some 2);
  checkb "both similar authors match" true (member_int "count" r4 = Some 2)

let test_engine_deadline () =
  let engine = Result.get_ok (Engine.create ()) in
  ignore (exec_ok engine (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  match
    Engine.exec engine ~deadline:(Some (Unix.gettimeofday () -. 1.))
      (query_request tql)
  with
  | Error e ->
      checks "typed error" "deadline_exceeded" (Protocol.code_name e.Protocol.code)
  | Ok _ -> Alcotest.fail "expected deadline_exceeded"

let test_engine_explain_and_stats () =
  let engine = Result.get_ok (Engine.create ()) in
  ignore (exec_ok engine (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  let e =
    exec_ok engine
      (Protocol.Explain
         { collection = "bib"; tql; mode = Executor.Toss })
  in
  checkb "explain has a plan" true (J.member "plan" e <> None);
  let s = exec_ok engine Protocol.Stats in
  checkb "stats carries the table" true (member_str "table" s <> None);
  checkb "stats carries metrics json" true (J.member "metrics" s <> None)

let test_engine_hydration () =
  let db_dir = temp_name "toss_serve_db" in
  let engine = Result.get_ok (Engine.create ~db_dir ()) in
  ignore (exec_ok engine (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  ignore (exec_ok engine (Protocol.Insert { collection = "bib"; xml = paper 2 }));
  let r = exec_ok engine (query_request tql) in
  (* A second engine over the same directory sees the same state. *)
  let engine' = Result.get_ok (Engine.create ~db_dir ()) in
  let r' = exec_ok engine' (query_request tql) in
  checkb "hydrated count agrees" true
    (member_int "count" r' = member_int "count" r);
  checkb "hydrated version agrees" true (member_int "version" r' = Some 2)

(* ------------------------------------------------------------------ *)
(* Live server: concurrency stress with single-threaded replay          *)
(* ------------------------------------------------------------------ *)

(* Wait for a server/router thread to report ready, then build a stop
   function that requests shutdown over the wire and joins. *)
let await_ready run =
  let ready = Mutex.create () in
  let started = ref false in
  let cond = Condition.create () in
  let resolved = ref "" in
  let outcome = ref (Ok ()) in
  let thread =
    Thread.create
      (fun () ->
        outcome :=
          run (fun addr ->
              Mutex.lock ready;
              resolved := addr;
              started := true;
              Condition.signal cond;
              Mutex.unlock ready))
      ()
  in
  Mutex.lock ready;
  while not !started do
    Condition.wait cond ready
  done;
  Mutex.unlock ready;
  let stop () =
    (match Client.connect !resolved with
    | Ok conn ->
        ignore (Client.call conn Protocol.Shutdown);
        Client.close conn
    | Error _ -> ());
    Thread.join thread;
    match !outcome with
    | Ok () -> ()
    | Error msg -> Alcotest.fail ("server exited with: " ^ msg)
  in
  (!resolved, stop)

(* Start an in-process server on a fresh address (a temp Unix socket
   unless [listen] says otherwise); returns the resolved address — for
   Unix sockets the bare path, for TCP [tcp:HOST:PORT] with the kernel-
   chosen port — and a stop function. *)
let start_server ?(domains = 3) ?(max_queue = 64) ?db_dir ?(cache_capacity = 256)
    ?socket_path ?listen ?access_log ?(trace_sample = 0) () =
  let listen =
    match listen with
    | Some l -> l
    | None ->
        Toss_server.Transport.Unix_sock
          (match socket_path with Some p -> p | None -> temp_name "toss_srv")
  in
  let config =
    {
      (Server.default_config ~listen) with
      Server.domains;
      max_queue;
      db_dir;
      cache_capacity;
      access_log;
      trace_sample;
    }
  in
  await_ready (fun ready -> Server.run ~ready config)

type answer_obs = {
  a_tql : string;
  a_mode : Executor.mode;
  a_version : int;
  a_trees : string list;
}

type observation =
  | Inserted of { doc_id : int; xml : string }
  | Answered of answer_obs

let stress_thread socket seed ops out =
  match Client.connect socket with
  | Error msg -> out := Error msg
  | Ok conn ->
      let observations = ref [] in
      let failure = ref None in
      let tqls =
        [|
          (tql, Executor.Toss);
          (tql, Executor.Tax);
          ("MATCH #1:paper(/#2:title) WHERE #2.content ~ \"T2\" SELECT #1", Executor.Toss);
        |]
      in
      for i = 0 to ops - 1 do
        if !failure = None then
          if i mod 3 = 0 then begin
            let xml = paper ((seed * 1000) + i) in
            match
              Client.call conn (Protocol.Insert { collection = "bib"; xml })
            with
            | Ok payload -> (
                match member_int "doc_id" payload with
                | Some doc_id ->
                    observations := Inserted { doc_id; xml } :: !observations
                | None -> failure := Some "insert reply without doc_id")
            | Error f -> failure := Some (Client.failure_to_string f)
          end
          else begin
            let tql, mode = tqls.((seed + i) mod Array.length tqls) in
            match
              Client.call conn
                (Protocol.Query { collection = "bib"; tql; mode; cache = true })
            with
            | Ok payload -> (
                match
                  ( member_int "version" payload,
                    Option.bind (J.member "trees" payload) J.to_list )
                with
                | Some version, Some trees ->
                    let trees = List.filter_map J.to_str trees in
                    observations :=
                      Answered
                        { a_tql = tql; a_mode = mode; a_version = version; a_trees = trees }
                      :: !observations
                | _ -> failure := Some "query reply missing version/trees")
            | Error (Client.Wire e)
              when e.Protocol.code = Protocol.Unknown_collection ->
                (* Legal before the first insert lands. *)
                ()
            | Error f -> failure := Some (Client.failure_to_string f)
          end
      done;
      Client.close conn;
      out :=
        (match !failure with
        | Some msg -> Error msg
        | None -> Ok (List.rev !observations))

let canonical_xml trees =
  List.map
    (fun t -> Toss_xml.Printer.to_string ~decl:false t)
    (Toss_check.Diff.canonical trees)

(* ------------------------------------------------------------------ *)
(* Snapshot isolation and parallel pinned queries                       *)
(* ------------------------------------------------------------------ *)

let answer_count pinned tql =
  match Session.query_at pinned tql with
  | Ok a -> List.length a.Session.trees
  | Error msg -> Alcotest.fail msg

(* A writer landing between pin and execution must not change the
   pinned query's answer — the MVCC contract the result cache and the
   stress replay both lean on. *)
let test_snapshot_isolation () =
  let session = Session.create () in
  Session.add_document session ~collection:"bib" (Parser.parse_exn (paper 1));
  let pinned = Result.get_ok (Session.pin session ~collection:"bib") in
  checki "pinned at version 1" 1 (Session.pinned_version pinned);
  (* The insert lands while the pinned query is notionally in flight;
     Name2 is within eps of Name1, so an unpinned query would see it. *)
  Session.add_document session ~collection:"bib" (Parser.parse_exn (paper 2));
  checki "pinned query ignores the concurrent insert" 1
    (answer_count pinned tql);
  let fresh = Result.get_ok (Session.pin session ~collection:"bib") in
  checki "fresh pin sees version 2" 2 (Session.pinned_version fresh);
  checki "fresh query sees both documents" 2 (answer_count fresh tql);
  (* The old pin keeps answering at its version, repeatedly. *)
  checki "old pin still answers at version 1" 1 (answer_count pinned tql);
  checki "old pin version unchanged" 1 (Session.pinned_version pinned)

(* One shared pin queried from several domains while a writer keeps
   inserting: every answer must equal the single-threaded answer taken
   before the writer started. *)
let test_parallel_pinned_queries () =
  let session = Session.create () in
  for i = 1 to 4 do
    Session.add_document session ~collection:"bib" (Parser.parse_exn (paper i))
  done;
  let pinned = Result.get_ok (Session.pin session ~collection:"bib") in
  let expected =
    match Session.query_at pinned tql with
    | Ok a -> canonical_xml a.Session.trees
    | Error msg -> Alcotest.fail msg
  in
  let reader () =
    let ok = ref true in
    for _ = 1 to 20 do
      (match Session.query_at pinned tql with
      | Ok a -> if canonical_xml a.Session.trees <> expected then ok := false
      | Error _ -> ok := false)
    done;
    !ok
  in
  let readers = Array.init 3 (fun _ -> Domain.spawn reader) in
  (* The writer churns on the main domain while the readers run. *)
  for i = 100 to 130 do
    Session.add_document session ~collection:"bib" (Parser.parse_exn (paper i))
  done;
  Array.iter
    (fun d -> checkb "every parallel answer matches the pinned answer" true (Domain.join d))
    readers;
  checki "pin survived the writer untouched" 4 (Session.pinned_version pinned)

let test_stress_replay () =
  let socket, stop = start_server () in
  let n_threads = 4 and ops = 24 in
  let outs = Array.init n_threads (fun _ -> ref (Ok [])) in
  let threads =
    Array.init n_threads (fun i ->
        Thread.create (fun () -> stress_thread socket (i + 1) ops outs.(i)) ())
  in
  Array.iter Thread.join threads;
  stop ();
  let observations =
    Array.to_list outs
    |> List.concat_map (fun out ->
           match !out with
           | Error msg -> Alcotest.fail msg
           | Ok obs -> obs)
  in
  let inserts =
    List.filter_map
      (function Inserted { doc_id; xml } -> Some (doc_id, xml) | _ -> None)
      observations
    |> List.sort compare
  in
  let answers =
    List.filter_map (function Answered a -> Some a | _ -> None) observations
  in
  checkb "some inserts happened" true (List.length inserts > 0);
  checkb "some queries were answered" true (List.length answers > 0);
  (* doc_ids are exactly 0..n-1: every insert is visible exactly once. *)
  List.iteri
    (fun i (doc_id, _) -> checki "doc_ids are dense" i doc_id)
    inserts;
  (* Replay: a query answered at version v ran against documents
     0..v-1. A fresh single-threaded session must answer identically
     (canonicalized: witness order is not part of the contract). *)
  let docs = Array.of_list (List.map snd inserts) in
  List.iter
    (fun { a_tql; a_mode; a_version; a_trees } ->
      checkb "version within bounds" true (a_version <= Array.length docs);
      let session = Session.create () in
      for i = 0 to a_version - 1 do
        Session.add_document session ~collection:"bib"
          (Parser.parse_exn docs.(i))
      done;
      match Session.query ~mode:a_mode session ~collection:"bib" a_tql with
      | Error msg -> Alcotest.fail ("replay failed: " ^ msg)
      | Ok answer ->
          let served = canonical_xml (List.map Parser.parse_exn a_trees) in
          let replayed = canonical_xml answer.Session.trees in
          checkb
            (Printf.sprintf "answer at version %d matches replay" a_version)
            true (served = replayed))
    answers

let find_counter snap ?labels name =
  Option.value ~default:0 (Metrics.find_counter snap ?labels name)

let test_stress_cache_metrics () =
  (* Deterministic warm-up on a quiet server: same query twice must hit,
     and the global counters must reflect it. *)
  let socket, stop = start_server () in
  let conn = Result.get_ok (Client.connect socket) in
  let call request =
    match Client.call conn request with
    | Ok payload -> payload
    | Error f -> Alcotest.fail (Client.failure_to_string f)
  in
  ignore (call (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  let snap0 = Metrics.snapshot () in
  let r1 = call (query_request tql) in
  let r2 = call (query_request tql) in
  checkb "cold miss" true (member_str "cache" r1 = Some "miss");
  checkb "warm hit" true (member_str "cache" r2 = Some "hit");
  let snap = Metrics.snapshot () in
  checkb "hit counter advanced" true
    (find_counter snap "server.cache.hits" > find_counter snap0 "server.cache.hits");
  ignore (call (Protocol.Insert { collection = "bib"; xml = paper 2 }));
  let r3 = call (query_request tql) in
  checkb "insert invalidates across the wire" true
    (member_str "cache" r3 = Some "miss");
  Client.close conn;
  stop ()

let test_overload_and_deadline_wire () =
  (* domains=0, max_queue=0: every pooled request is shed, while ping
     and stats still answer inline. *)
  let socket, stop = start_server ~domains:0 ~max_queue:0 () in
  let conn = Result.get_ok (Client.connect socket) in
  (match Client.call conn Protocol.Ping with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  (match Client.call conn (query_request tql) with
  | Error (Client.Wire e) ->
      checks "typed overload" "overloaded" (Protocol.code_name e.Protocol.code)
  | Ok _ | Error (Client.Transport _) -> Alcotest.fail "expected overloaded");
  (match Client.call conn Protocol.Stats with
  | Ok s ->
      let snap_sheds = member_str "table" s in
      checkb "stats alive under overload" true (snap_sheds <> None)
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  Client.close conn;
  stop ();
  (* deadline_ms 0: the request dies of old age before or during
     execution, with the typed error either way. *)
  let socket, stop = start_server () in
  let conn = Result.get_ok (Client.connect socket) in
  ignore (Client.call conn (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  (match Client.call conn ~deadline_ms:0 (query_request tql) with
  | Error (Client.Wire e) ->
      checks "typed deadline" "deadline_exceeded" (Protocol.code_name e.Protocol.code)
  | Ok _ | Error (Client.Transport _) -> Alcotest.fail "expected deadline_exceeded");
  Client.close conn;
  stop ()

let test_half_close_drains_responses () =
  (* Regression for a use-after-close race: the reader thread used to
     close the fd the moment input hit EOF, while responses for still-
     queued pool jobs were pending — they were silently dropped, or,
     with fd-number reuse, delivered to a different client. A client
     that pipelines requests and then half-closes its sending side must
     still receive every response. *)
  let socket, stop = start_server ~domains:1 () in
  let conn = Result.get_ok (Client.connect socket) in
  ignore (Client.call conn (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  Client.close conn;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let n = 24 in
  for i = 1 to n do
    output_string oc
      (Protocol.request_to_line
         {
           Protocol.id = Some i;
           deadline_ms = None;
           trace_id = None;
           allow_partial = false;
           request = query_request ~cache:false tql;
         });
    output_char oc '\n'
  done;
  flush oc;
  (* The server's reader sees EOF while most jobs are still queued
     behind the single worker. *)
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let seen = Hashtbl.create n in
  (try
     for _ = 1 to n do
       match Protocol.parse_response (input_line ic) with
       | Ok { Protocol.rid = Some i; body = Ok _; _ } -> Hashtbl.replace seen i ()
       | Ok { Protocol.rid = _; body = Error e; _ } ->
           Alcotest.fail ("unexpected error: " ^ e.Protocol.message)
       | Ok { Protocol.rid = None; _ } -> Alcotest.fail "response without id"
       | Error msg -> Alcotest.fail msg
     done
   with End_of_file | Sys_error _ -> ());
  checki "every pipelined response arrives after half-close" n
    (Hashtbl.length seen);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  stop ()

let test_socket_claiming () =
  (* A stale socket file left by a dead server is reclaimed… *)
  let path = temp_name "toss_sock" in
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX path);
  Unix.close stale;
  checkb "stale file left behind" true (Sys.file_exists path);
  let _, stop = start_server ~socket_path:path () in
  (* …but a second server must refuse a socket something is listening
     on, without unlinking it from under the live server. *)
  (match Server.run (Server.default_config ~listen:(Toss_server.Transport.Unix_sock path)) with
  | Ok () -> Alcotest.fail "second server bound a live socket"
  | Error _ -> ());
  checkb "live socket not unlinked" true (Sys.file_exists path);
  let conn = Result.get_ok (Client.connect path) in
  (match Client.call conn Protocol.Ping with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  Client.close conn;
  stop ()

let test_server_hydration () =
  let db_dir = temp_name "toss_srv_db" in
  let socket, stop = start_server ~db_dir () in
  let conn = Result.get_ok (Client.connect socket) in
  ignore (Client.call conn (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  ignore (Client.call conn (Protocol.Insert { collection = "bib"; xml = paper 2 }));
  Client.close conn;
  stop ();
  let socket, stop = start_server ~db_dir () in
  let conn = Result.get_ok (Client.connect socket) in
  (match Client.call conn (query_request tql) with
  | Ok payload ->
      checkb "restarted server sees both docs" true
        (member_int "count" payload = Some 2)
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  Client.close conn;
  stop ()

(* ------------------------------------------------------------------ *)
(* Request-scoped tracing                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_echo () =
  let socket, stop = start_server () in
  let conn = Result.get_ok (Client.connect socket) in
  (* A client-supplied id comes back verbatim, with the server's own
     timing attached — inline and pooled ops alike. *)
  (match Client.call_response conn ~trace_id:"abc" Protocol.Ping with
  | Ok r ->
      checkb "inline op echoes the id" true (r.Protocol.rtrace_id = Some "abc");
      checkb "inline op reports server_ms" true (r.Protocol.server_ms <> None)
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  ignore (Client.call conn (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  (match Client.call_response conn ~trace_id:"q-1" (query_request ~cache:false tql) with
  | Ok r ->
      checkb "pooled op echoes the id" true (r.Protocol.rtrace_id = Some "q-1");
      checkb "pooled op reports server_ms" true (r.Protocol.server_ms <> None);
      checkb "pooled op reports queue_ms" true (r.Protocol.queue_ms <> None);
      checkb "timings non-negative" true
        (Option.get r.Protocol.server_ms >= 0. && Option.get r.Protocol.queue_ms >= 0.)
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  (* No id supplied: the server generates a well-formed one. *)
  (match Client.call_response conn Protocol.Ping with
  | Ok r -> (
      match r.Protocol.rtrace_id with
      | Some id -> checkb "generated id is valid" true (Toss_obs.Trace.is_valid id)
      | None -> Alcotest.fail "no trace id generated")
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  (* A malformed id is a typed bad_request, not a copied-into-logs id. *)
  (match Client.call_response conn ~trace_id:"has space" Protocol.Ping with
  | Ok { Protocol.body = Error e; _ } ->
      checks "invalid id rejected" "bad_request" (Protocol.code_name e.Protocol.code)
  | Ok { Protocol.body = Ok _; _ } -> Alcotest.fail "expected bad_request"
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  Client.close conn;
  stop ()

(* The regression the per-trace slow sink exists for: several domains
   executing queries concurrently, every query slow-logged. Each record
   must carry exactly one request's events — before the sink was keyed
   by trace id, concurrent requests interleaved into garbage records. *)
let test_multidomain_slow_capture () =
  let lock = Mutex.create () in
  let captured = ref [] in
  Toss_obs.Event.clear_sinks ();
  Toss_obs.Event.install
    (Toss_obs.Event.slow_query ~threshold_s:0. ~write:(fun line ->
         Mutex.lock lock;
         captured := line :: !captured;
         Mutex.unlock lock));
  Fun.protect ~finally:Toss_obs.Event.clear_sinks @@ fun () ->
  let socket, stop = start_server ~domains:4 () in
  let conn = Result.get_ok (Client.connect socket) in
  ignore (Client.call conn (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  Client.close conn;
  let n_threads = 4 and per_thread = 6 in
  let failures = Array.make n_threads None in
  let threads =
    Array.init n_threads (fun t ->
        Thread.create
          (fun () ->
            match Client.connect socket with
            | Error msg -> failures.(t) <- Some msg
            | Ok conn ->
                for j = 1 to per_thread do
                  let trace_id = Printf.sprintf "t%d-%d" t j in
                  match
                    Client.call conn ~trace_id (query_request ~cache:false tql)
                  with
                  | Ok _ -> ()
                  | Error f -> failures.(t) <- Some (Client.failure_to_string f)
                done;
                Client.close conn)
          ())
  in
  Array.iter Thread.join threads;
  stop ();
  Array.iter (Option.iter Alcotest.fail) failures;
  let records = List.map J.parse_exn !captured in
  let expected =
    List.concat_map
      (fun t -> List.init per_thread (fun j -> Printf.sprintf "t%d-%d" t (j + 1)))
      (List.init n_threads Fun.id)
    |> List.sort compare
  in
  let record_id r =
    match Option.bind (J.member "trace_id" r) J.to_str with
    | Some id -> id
    | None -> Alcotest.fail "slow record without trace_id"
  in
  Alcotest.(check (list string))
    "one record per query, keyed by its trace id" expected
    (List.sort compare (List.map record_id records));
  List.iter
    (fun r ->
      let id = record_id r in
      let events = Option.get (Option.bind (J.member "events" r) J.to_list) in
      checkb "record has events" true (events <> []);
      List.iter
        (fun e ->
          checkb "every event belongs to the record's request" true
            (Option.bind (J.member "trace_id" e) J.to_str = Some id))
        events;
      let kinds =
        List.map
          (fun e -> Option.get (Option.bind (J.member "kind" e) J.to_str))
          events
      in
      checks "stream starts the query" "query_start" (List.hd kinds);
      checks "stream ends the query" "query_end"
        (List.nth kinds (List.length kinds - 1));
      (* The span tree on query_end is complete and stamped throughout:
         no frames from a concurrent request leaked in. *)
      let last = List.nth events (List.length events - 1) in
      let trace = Option.get (J.member "trace" last) in
      checkb "root span is the select" true
        (Option.bind (J.member "name" trace) J.to_str = Some "executor.select");
      let rec check_span sp =
        (match Option.bind (J.member "meta" sp) (J.member "trace_id") with
        | Some tid -> checkb "span stamped with the record's id" true (J.to_str tid = Some id)
        | None -> Alcotest.fail "span frame without trace_id");
        match Option.bind (J.member "children" sp) J.to_list with
        | Some children -> List.iter check_span children
        | None -> ()
      in
      check_span trace)
    records

let test_access_log () =
  let log_path = temp_name "toss_access" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists log_path then Sys.remove log_path)
  @@ fun () ->
  let socket, stop = start_server ~access_log:log_path ~trace_sample:1 () in
  let conn = Result.get_ok (Client.connect socket) in
  ignore (Client.call conn ~trace_id:"alog-i" (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  ignore (Client.call conn ~trace_id:"alog-q" (query_request ~cache:false tql));
  ignore (Client.call conn Protocol.Ping);
  Client.close conn;
  stop ();
  let ic = open_in log_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  (* insert + query + ping + the shutdown that stopped the server. *)
  let records = List.rev_map J.parse_exn !lines in
  checki "one record per request" 4 (List.length records);
  let str name r = Option.bind (J.member name r) J.to_str in
  let num name r = Option.bind (J.member name r) J.to_num in
  List.iter
    (fun r ->
      checkb "ts present" true (num "ts" r <> None);
      checkb "trace_id present" true (str "trace_id" r <> None);
      checkb "op present" true (str "op" r <> None);
      checks "status ok" "ok" (Option.get (str "status" r));
      checkb "exec seconds non-negative" true (Option.get (num "exec_s" r) >= 0.);
      checkb "domain recorded" true (num "domain" r <> None))
    records;
  let find_op op =
    match List.find_opt (fun r -> str "op" r = Some op) records with
    | Some r -> r
    | None -> Alcotest.failf "no %s record in the access log" op
  in
  let q = find_op "query" in
  checkb "query keeps the client's id" true (str "trace_id" q = Some "alog-q");
  checkb "collection recorded" true (str "collection" q = Some "bib");
  checkb "cache status recorded" true (str "cache" q = Some "miss");
  checkb "version recorded" true
    (Option.bind (J.member "version" q) J.to_int = Some 1);
  checkb "queue wait recorded" true (Option.get (num "queue_s" q) >= 0.);
  (* trace_sample:1 records the span tree for every pooled request. *)
  checkb "sampled span tree present" true (J.member "trace" q <> None);
  let i = find_op "insert" in
  checkb "insert keeps the client's id" true (str "trace_id" i = Some "alog-i");
  let p = find_op "ping" in
  checkb "inline op gets a generated id" true (str "trace_id" p <> None)

(* ------------------------------------------------------------------ *)
(* Binary codec properties                                              *)
(* ------------------------------------------------------------------ *)

(* Values whose JSON text rendering round-trips exactly: quarters stay
   finite in decimal, so the same generator serves both codecs and the
   cross-codec comparison below is an equality, not an approximation. *)
let gen_json =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 return J.Null;
                 map (fun b -> J.Bool b) bool;
                 map
                   (fun i -> J.Num (float_of_int i /. 4.))
                   (int_range (-4000) 4000);
                 map (fun s -> J.Str s) (string_size (int_range 0 12));
               ]
           in
           if n = 0 then leaf
           else
             let keys =
               string_size ~gen:(char_range 'a' 'z') (int_range 1 6)
             in
             let dedup l =
               List.rev
                 (List.fold_left
                    (fun acc (k, v) ->
                      if List.mem_assoc k acc then acc else (k, v) :: acc)
                    [] l)
             in
             oneof
               [
                 leaf;
                 map (fun l -> J.Arr l) (list_size (int_range 0 4) (self (n / 2)));
                 map
                   (fun l -> J.Obj (dedup l))
                   (list_size (int_range 0 4) (pair keys (self (n / 2))));
               ]))

let gen_envelope =
  QCheck2.Gen.(
    let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    let mode = oneofl [ Executor.Tax; Executor.Toss ] in
    let gen_request =
      oneof
        [
          oneofl [ Protocol.Ping; Protocol.Stats; Protocol.Metrics; Protocol.Shutdown ];
          map2
            (fun collection xml -> Protocol.Insert { collection; xml })
            name (string_size (int_range 0 24));
          map3
            (fun collection tql (mode, cache) ->
              Protocol.Query { collection; tql; mode; cache })
            name (string_size (int_range 0 24)) (pair mode bool);
          map3
            (fun (left, right) tql mode -> Protocol.Join { left; right; tql; mode })
            (pair name name) (string_size (int_range 0 24)) mode;
          map3
            (fun collection tql mode -> Protocol.Explain { collection; tql; mode })
            name (string_size (int_range 0 24)) mode;
        ]
    in
    let trace = string_size ~gen:(char_range 'a' 'z') (int_range 1 16) in
    map3
      (fun (id, deadline_ms) (trace_id, allow_partial) request ->
        { Protocol.id; deadline_ms; trace_id; allow_partial; request })
      (pair (opt (int_bound 10000)) (opt (int_bound 10000)))
      (pair (opt trace) bool)
      gen_request)

let gen_response =
  QCheck2.Gen.(
    let quarters = map (fun i -> float_of_int i /. 4.) (int_bound 40000) in
    let err =
      map2
        (fun code message -> Protocol.error code message)
        (oneofl
           [
             Protocol.Bad_request;
             Protocol.Parse_error;
             Protocol.Overloaded;
             Protocol.Shard_unavailable;
             Protocol.Internal;
           ])
        (string_size (int_range 0 24))
    in
    map3
      (fun (id, trace_id) (server_ms, queue_ms) body ->
        {
          Protocol.rid = id;
          rtrace_id = trace_id;
          server_ms;
          queue_ms;
          body;
        })
      (pair (opt (int_bound 10000))
         (opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 16))))
      (pair (opt quarters) (opt quarters))
      (oneof [ map Result.ok gen_json; map Result.error err ]))

let is_parse_error = function
  | Error e -> e.Protocol.code = Protocol.Parse_error
  | Ok _ -> false

let prop_binary_value_roundtrip =
  QCheck2.Test.make ~name:"binary value and frame round-trip" ~count:300
    gen_json (fun v ->
      Protocol.decode_binary (Protocol.encode_binary v) = Ok v
      && Protocol.decode_frame (Protocol.encode_frame v) = Ok v)

let prop_binary_envelope_roundtrip =
  QCheck2.Test.make ~name:"framed request envelope round-trip" ~count:300
    gen_envelope (fun env ->
      match Protocol.decode_frame (Protocol.encode_frame (Protocol.request_to_json env)) with
      | Error _ -> false
      | Ok v -> Protocol.request_of_json v = Ok env)

let prop_truncated_frame_rejected =
  (* Every proper prefix of a valid frame is a typed parse_error —
     never an exception, never a bogus decode. *)
  QCheck2.Test.make ~name:"truncated frames are typed parse_errors" ~count:150
    QCheck2.Gen.(pair gen_json (float_bound_inclusive 1.))
    (fun (v, frac) ->
      let frame = Protocol.encode_frame v in
      let k = int_of_float (frac *. float_of_int (String.length frame - 1)) in
      is_parse_error (Protocol.decode_frame (String.sub frame 0 k)))

let test_oversized_frame_rejected () =
  (* A header announcing more than max_frame is rejected from the
     4 header bytes alone, before any payload allocation. *)
  let header n =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    Bytes.to_string b
  in
  checkb "oversized length via frame_length" true
    (is_parse_error (Protocol.frame_length (header (Protocol.max_frame + 1))));
  checkb "oversized length via decode_frame" true
    (is_parse_error (Protocol.decode_frame (header (Protocol.max_frame + 1) ^ "x")));
  checkb "short header" true (is_parse_error (Protocol.frame_length "ab"));
  checkb "sane length accepted" true (Protocol.frame_length (header 5) = Ok 5);
  (* Framing intact, payload garbage: still typed, still no exception. *)
  checkb "unknown tag" true
    (is_parse_error (Protocol.decode_frame (header 1 ^ "Z")));
  checkb "trailing bytes" true
    (is_parse_error
       (Protocol.decode_frame (header 2 ^ Protocol.encode_binary J.Null ^ "N")))

let prop_cross_codec_responses =
  (* One response value, both codecs: the JSON line and the binary
     frame must decode to the same response. *)
  QCheck2.Test.make ~name:"responses agree across codecs" ~count:300
    gen_response (fun r ->
      let via_json = Protocol.parse_response (Protocol.response_to_line r) in
      let via_binary =
        match Protocol.decode_frame (Protocol.encode_frame (Protocol.response_to_json r)) with
        | Error e -> Error e.Protocol.message
        | Ok v -> Protocol.response_of_json v
      in
      via_json = Ok r && via_binary = Ok r)

(* ------------------------------------------------------------------ *)
(* TCP transport, binary connections, connect retry                     *)
(* ------------------------------------------------------------------ *)

let payload_canonical payload =
  match Option.bind (J.member "trees" payload) J.to_list with
  | None -> Alcotest.fail "payload without trees"
  | Some trees ->
      canonical_xml
        (List.map
           (fun t -> Parser.parse_exn (Option.get (J.to_str t)))
           trees)

let call_ok conn request =
  match Client.call conn request with
  | Ok payload -> payload
  | Error f -> Alcotest.fail (Client.failure_to_string f)

let test_tcp_and_binary_live () =
  let addr, stop = start_server ~listen:(Transport.Tcp ("127.0.0.1", 0)) () in
  checkb "port 0 resolved to a concrete port" true
    (String.length addr > String.length "tcp:127.0.0.1:");
  let bin = Result.get_ok (Client.connect ~codec:Protocol.Binary addr) in
  checkb "binary codec negotiated" true (Client.codec bin = Protocol.Binary);
  (match Client.call bin Protocol.Ping with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  ignore (call_ok bin (Protocol.Insert { collection = "bib"; xml = paper 1 }));
  ignore (call_ok bin (Protocol.Insert { collection = "bib"; xml = paper 2 }));
  let rb = call_ok bin (query_request ~cache:false tql) in
  (* A JSON client on the same TCP server sees the identical answer:
     the codec is per-connection framing, nothing more. *)
  let js = Result.get_ok (Client.connect addr) in
  checkb "json is still the default" true (Client.codec js = Protocol.Json);
  let rj = call_ok js (query_request ~cache:false tql) in
  checkb "versions agree across codecs" true
    (member_int "version" rb = member_int "version" rj);
  checkb "counts agree across codecs" true
    (member_int "count" rb = member_int "count" rj);
  checkb "witnesses agree across codecs" true
    (payload_canonical rb = payload_canonical rj);
  (* Typed errors survive the binary framing too. *)
  (match
     Client.call bin
       (Protocol.Query
          { collection = "nope"; tql; mode = Executor.Toss; cache = true })
   with
  | Error (Client.Wire e) ->
      checks "typed error over binary" "unknown_collection"
        (Protocol.code_name e.Protocol.code)
  | Ok _ | Error (Client.Transport _) -> Alcotest.fail "expected unknown_collection");
  Client.close bin;
  Client.close js;
  stop ()

let test_connect_retry () =
  (* No server at all: the bounded retry gives up with the plain
     connect error. *)
  let path = temp_name "toss_retry" in
  (match Client.connect ~retry_ms:50 path with
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error msg ->
      checkb "connect error names the address" true
        (String.length msg > 0
        && String.sub msg 0 (min 14 (String.length msg)) = "cannot connect"));
  (* Server comes up 300 ms after the client starts dialing: the
     backoff loop rides out the gap. *)
  let stop_box = ref None in
  let box_lock = Mutex.create () in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        let _, stop = start_server ~socket_path:path () in
        Mutex.lock box_lock;
        stop_box := Some stop;
        Mutex.unlock box_lock)
      ()
  in
  (match Client.connect ~retry_ms:5000 path with
  | Error msg -> Alcotest.fail ("retry did not ride out the gap: " ^ msg)
  | Ok conn ->
      (match Client.call conn Protocol.Ping with
      | Ok _ -> ()
      | Error f -> Alcotest.fail (Client.failure_to_string f));
      Client.close conn);
  Thread.join starter;
  Mutex.lock box_lock;
  let stop = Option.get !stop_box in
  Mutex.unlock box_lock;
  stop ()

(* ------------------------------------------------------------------ *)
(* Sharded router                                                       *)
(* ------------------------------------------------------------------ *)

let start_router ?listen ?(connect_retry_ms = 300) ?(replicated = []) shards =
  let listen =
    match listen with
    | Some l -> l
    | None -> Transport.Unix_sock (temp_name "toss_rtr")
  in
  let map =
    match Shard_map.make ~shards ~replicated with
    | Ok m -> m
    | Error msg -> Alcotest.fail msg
  in
  let config = { (Router.default_config ~listen ~map) with Router.connect_retry_ms } in
  await_ready (fun ready -> Router.run ~ready config)

(* The differential gate of ISSUE.md: a router over two shards must be
   indistinguishable — witness for witness, after Diff.canonical — from
   a single unsharded server over the same corpus, across both codecs
   and both transports. *)
let test_router_differential_gate () =
  let join_tql =
    "MATCH #0:pt(//#1:paper(/#2:author), //#3:paper(/#4:author)) WHERE \
     #2.content ~ #4.content SELECT #1,#3"
  in
  let queries =
    [
      tql;
      "MATCH #1:paper(/#2:title) WHERE #2.content ~ \"T2\" SELECT #1";
      "MATCH #1:paper(/#2:author) WHERE #2.content = \"Name3\" SELECT #1";
    ]
  in
  let combos =
    [
      (Transport.Unix_sock (temp_name "toss_rtr"), Protocol.Json);
      (Transport.Unix_sock (temp_name "toss_rtr"), Protocol.Binary);
      (Transport.Tcp ("127.0.0.1", 0), Protocol.Json);
      (Transport.Tcp ("127.0.0.1", 0), Protocol.Binary);
    ]
  in
  List.iter
    (fun (listen, codec) ->
      let label =
        Printf.sprintf "[%s %s]"
          (match listen with Transport.Unix_sock _ -> "unix" | Transport.Tcp _ -> "tcp")
          (Protocol.codec_name codec)
      in
      let single_addr, stop_single = start_server () in
      let s1, stop1 = start_server () in
      let s2, stop2 = start_server () in
      let router_addr, stop_router =
        start_router ~listen ~replicated:[ "refs" ] [ s1; s2 ]
      in
      let single = Result.get_ok (Client.connect single_addr) in
      let routed = Result.get_ok (Client.connect ~codec router_addr) in
      (* Same inserts, same order, into both deployments; the router's
         logical numbering must match the single server's exactly. *)
      for i = 1 to 6 do
        let req = Protocol.Insert { collection = "bib"; xml = paper i } in
        let a = call_ok single req and b = call_ok routed req in
        checkb
          (label ^ " insert numbering matches the single server")
          true
          (member_int "doc_id" a = member_int "doc_id" b
          && member_int "version" a = member_int "version" b);
        checkb (label ^ " routed insert names its shard") true
          (member_int "shard" b <> None)
      done;
      for i = 2 to 4 do
        let req = Protocol.Insert { collection = "refs"; xml = paper i } in
        ignore (call_ok single req);
        ignore (call_ok routed req)
      done;
      (* Partitioned queries: fan-out + canonical merge == one server. *)
      List.iter
        (fun q ->
          let req = query_request ~cache:false q in
          let a = call_ok single req and b = call_ok routed req in
          checkb (label ^ " version agrees: " ^ q) true
            (member_int "version" a = member_int "version" b);
          checkb (label ^ " count agrees: " ^ q) true
            (member_int "count" a = member_int "count" b);
          checkb (label ^ " witnesses agree: " ^ q) true
            (payload_canonical a = payload_canonical b))
        queries;
      (* Replicated collection: routed to one shard, same answer. *)
      let rq =
        Protocol.Query
          {
            collection = "refs";
            tql = "MATCH #1:paper(/#2:title) WHERE #2.content ~ \"T3\" SELECT #1";
            mode = Executor.Toss;
            cache = false;
          }
      in
      let a = call_ok single rq and b = call_ok routed rq in
      checkb (label ^ " replicated query agrees") true
        (payload_canonical a = payload_canonical b
        && member_int "count" a = member_int "count" b);
      (* Join with a replicated right side: broadcast L_i ⋈ R is exact. *)
      let jreq =
        Protocol.Join
          { left = "bib"; right = "refs"; tql = join_tql; mode = Executor.Toss }
      in
      let a = call_ok single jreq and b = call_ok routed jreq in
      checkb (label ^ " join witnesses agree") true
        (payload_canonical a = payload_canonical b);
      checkb (label ^ " join count agrees") true
        (member_int "count" a = member_int "count" b);
      checkb (label ^ " join versions agree") true
        (member_int "left_version" a = member_int "left_version" b
        && member_int "right_version" a = member_int "right_version" b);
      (* Both sides partitioned over >1 shard: typed refusal, not a
         silently inexact answer. *)
      ignore (call_ok single (Protocol.Insert { collection = "bib2"; xml = paper 9 }));
      ignore (call_ok routed (Protocol.Insert { collection = "bib2"; xml = paper 9 }));
      (match
         Client.call routed
           (Protocol.Join
              { left = "bib"; right = "bib2"; tql = join_tql; mode = Executor.Toss })
       with
      | Error (Client.Wire e) ->
          checks (label ^ " partitioned-partitioned join refused") "query_error"
            (Protocol.code_name e.Protocol.code)
      | Ok _ | Error (Client.Transport _) ->
          Alcotest.fail (label ^ " expected query_error for partitioned join"));
      (* Shadow names are reserved for the router's own mirroring. *)
      (match
         Client.call routed
           (Protocol.Insert { collection = ".vocab.bib"; xml = paper 1 })
       with
      | Error (Client.Wire e) ->
          checks (label ^ " shadow collection rejected") "bad_request"
            (Protocol.code_name e.Protocol.code)
      | Ok _ | Error (Client.Transport _) ->
          Alcotest.fail (label ^ " expected bad_request for shadow name"));
      Client.close single;
      Client.close routed;
      stop_router ();
      stop1 ();
      stop2 ();
      stop_single ())
    combos

let test_router_shard_loss () =
  let s1, stop1 = start_server () in
  let s2, stop2 = start_server () in
  let router_addr, stop_router = start_router ~connect_retry_ms:50 [ s1; s2 ] in
  let conn = Result.get_ok (Client.connect router_addr) in
  for i = 1 to 4 do
    ignore (call_ok conn (Protocol.Insert { collection = "bib"; xml = paper i }))
  done;
  let full = call_ok conn (query_request ~cache:false tql) in
  checkb "full answer before the loss" true (member_int "count" full = Some 4);
  checkb "not partial when all shards answer" true
    (J.member "partial" full = None);
  (* Kill shard 2 out from under the router. *)
  stop2 ();
  (match Client.call conn (query_request ~cache:false tql) with
  | Error (Client.Wire e) ->
      checks "typed shard_unavailable" "shard_unavailable"
        (Protocol.code_name e.Protocol.code)
  | Ok _ | Error (Client.Transport _) -> Alcotest.fail "expected shard_unavailable");
  (* Opting in gets the survivors' merged answer, stamped partial. *)
  (match
     Client.call_response conn ~allow_partial:true (query_request ~cache:false tql)
   with
  | Ok { Protocol.body = Ok payload; _ } ->
      checkb "partial stamp" true (J.member "partial" payload = Some (J.Bool true));
      let failed =
        Option.value ~default:[]
          (Option.bind (J.member "failed" payload) J.to_list)
      in
      checkb "failed shard named" true (List.length failed = 1);
      let n = Option.get (member_int "count" payload) in
      checkb "survivors' answer is a sub-multiset" true (n >= 0 && n <= 4)
  | Ok { Protocol.body = Error e; _ } ->
      Alcotest.fail ("partial query failed: " ^ e.Protocol.message)
  | Error f -> Alcotest.fail (Client.failure_to_string f));
  (* Inserts are never partial: a half-applied write would silently
     diverge the shards. *)
  (match
     Client.call conn ~allow_partial:true
       (Protocol.Insert { collection = "bib"; xml = paper 9 })
   with
  | Error (Client.Wire e) ->
      checks "insert refuses partial application" "shard_unavailable"
        (Protocol.code_name e.Protocol.code)
  | Ok _ | Error (Client.Transport _) -> Alcotest.fail "expected shard_unavailable");
  Client.close conn;
  stop_router ();
  stop1 ()

let test_loadgen_open_loop () =
  let addr, stop = start_server () in
  let cfg =
    {
      (Loadgen.default_config ~target:addr) with
      Loadgen.requests = 40;
      qps = 400.;
      concurrency = 4;
      n_papers = 10;
    }
  in
  (match Loadgen.run cfg with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      checkb "no request failed" true (not (Loadgen.failed r));
      checki "every request answered" 40 r.Loadgen.ok;
      checkb "corpus ingested through the wire" true (r.Loadgen.docs > 0);
      checkb "rate measured" true (r.Loadgen.achieved_qps > 0.);
      checkb "percentiles ordered" true
        (r.Loadgen.p50_ms <= r.Loadgen.p99_ms
        && r.Loadgen.p99_ms <= r.Loadgen.p999_ms
        && r.Loadgen.p999_ms <= r.Loadgen.max_ms));
  stop ()

let () =
  Alcotest.run "toss_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "request errors" `Quick test_protocol_errors;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss/evict/invalidate" `Quick test_cache_basics;
          Alcotest.test_case "eviction queue bounded" `Quick
            test_cache_order_bounded;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs and drains" `Quick test_pool_runs_jobs;
          Alcotest.test_case "sheds when full" `Quick test_pool_sheds;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cache and invalidation" `Quick
            test_engine_cache_and_invalidation;
          Alcotest.test_case "deadline" `Quick test_engine_deadline;
          Alcotest.test_case "explain and stats" `Quick test_engine_explain_and_stats;
          Alcotest.test_case "hydration" `Quick test_engine_hydration;
        ] );
      ( "snapshot isolation",
        [
          Alcotest.test_case "writer does not move a pin" `Quick
            test_snapshot_isolation;
          Alcotest.test_case "parallel pinned queries" `Quick
            test_parallel_pinned_queries;
        ] );
      ( "binary codec",
        [
          QCheck_alcotest.to_alcotest prop_binary_value_roundtrip;
          QCheck_alcotest.to_alcotest prop_binary_envelope_roundtrip;
          QCheck_alcotest.to_alcotest prop_truncated_frame_rejected;
          Alcotest.test_case "oversized and corrupt frames" `Quick
            test_oversized_frame_rejected;
          QCheck_alcotest.to_alcotest prop_cross_codec_responses;
        ] );
      ( "live server",
        [
          Alcotest.test_case "stress replay" `Slow test_stress_replay;
          Alcotest.test_case "cache metrics over the wire" `Quick
            test_stress_cache_metrics;
          Alcotest.test_case "overload and deadline" `Quick
            test_overload_and_deadline_wire;
          Alcotest.test_case "hydration across restart" `Quick
            test_server_hydration;
          Alcotest.test_case "half-close drains responses" `Quick
            test_half_close_drains_responses;
          Alcotest.test_case "socket claiming" `Quick test_socket_claiming;
          Alcotest.test_case "tcp transport and binary codec" `Quick
            test_tcp_and_binary_live;
          Alcotest.test_case "connect retry" `Quick test_connect_retry;
        ] );
      ( "sharded router",
        [
          Alcotest.test_case "differential gate vs single server" `Slow
            test_router_differential_gate;
          Alcotest.test_case "shard loss and partial results" `Quick
            test_router_shard_loss;
          Alcotest.test_case "open-loop load generator" `Quick
            test_loadgen_open_loop;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "trace id echo and timing" `Quick test_trace_echo;
          Alcotest.test_case "multi-domain slow capture" `Quick
            test_multidomain_slow_capture;
          Alcotest.test_case "access log" `Quick test_access_log;
        ] );
    ]
