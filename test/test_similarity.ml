(* Tests for string similarity measures, clique enumeration, and the SEA
   similarity-enhancement algorithm (paper Section 4.3, Figure 12,
   Example 11). *)

module Metric = Toss_similarity.Metric
module Levenshtein = Toss_similarity.Levenshtein
module Jaro = Toss_similarity.Jaro
module Token = Toss_similarity.Token
module Monge_elkan = Toss_similarity.Monge_elkan
module Name_rules = Toss_similarity.Name_rules
module Text_rules = Toss_similarity.Text_rules
module Clique = Toss_similarity.Clique
module Node_dist = Toss_similarity.Node_dist
module Sea = Toss_similarity.Sea
module Node = Toss_hierarchy.Node
module Hierarchy = Toss_hierarchy.Hierarchy

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checkf_approx = Alcotest.(check (float 1e-3))

(* ------------------------------------------------------------------ *)
(* Levenshtein                                                          *)
(* ------------------------------------------------------------------ *)

let test_levenshtein_known () =
  checki "identical" 0 (Levenshtein.distance "kitten" "kitten");
  checki "kitten/sitting" 3 (Levenshtein.distance "kitten" "sitting");
  checki "empty vs word" 5 (Levenshtein.distance "" "abcde");
  checki "word vs empty" 5 (Levenshtein.distance "abcde" "");
  checki "example 11: relation/relational" 2 (Levenshtein.distance "relation" "relational");
  checki "example 11: model/models" 1 (Levenshtein.distance "model" "models");
  checki "substitution" 1 (Levenshtein.distance "cat" "car")

let test_levenshtein_within () =
  Alcotest.(check (option int)) "within 3" (Some 3)
    (Levenshtein.distance_within 3 "kitten" "sitting");
  Alcotest.(check (option int)) "not within 2" None
    (Levenshtein.distance_within 2 "kitten" "sitting");
  Alcotest.(check (option int)) "within 0 identical" (Some 0)
    (Levenshtein.distance_within 0 "abc" "abc");
  Alcotest.(check (option int)) "negative threshold" None
    (Levenshtein.distance_within (-1) "a" "a");
  Alcotest.(check (option int)) "length gap prunes" None
    (Levenshtein.distance_within 2 "abc" "abcdefgh")

let test_damerau () =
  checki "transposition is one edit" 1 (Levenshtein.damerau_distance "abcd" "abdc");
  checki "plain lev needs two" 2 (Levenshtein.distance "abcd" "abdc");
  checki "identical" 0 (Levenshtein.damerau_distance "x" "x")

let string_pair_gen =
  QCheck2.Gen.(pair (string_size ~gen:printable (int_range 0 12))
                 (string_size ~gen:printable (int_range 0 12)))

let prop_lev_symmetric =
  QCheck2.Test.make ~name:"levenshtein symmetric" ~count:200 string_pair_gen
    (fun (a, b) -> Levenshtein.distance a b = Levenshtein.distance b a)

let prop_lev_identity =
  QCheck2.Test.make ~name:"levenshtein identity" ~count:200
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 12))
    (fun a -> Levenshtein.distance a a = 0)

let prop_lev_triangle =
  QCheck2.Test.make ~name:"levenshtein triangle inequality (strong measure)" ~count:200
    QCheck2.Gen.(triple (string_size ~gen:printable (int_range 0 8))
                   (string_size ~gen:printable (int_range 0 8))
                   (string_size ~gen:printable (int_range 0 8)))
    (fun (a, b, c) ->
      Levenshtein.distance a c <= Levenshtein.distance a b + Levenshtein.distance b c)

let prop_lev_within_agrees =
  QCheck2.Test.make ~name:"banded distance agrees with full DP" ~count:200
    string_pair_gen (fun (a, b) ->
      let d = Levenshtein.distance a b in
      match Levenshtein.distance_within 4 a b with
      | Some d' -> d = d' && d <= 4
      | None -> d > 4)

(* ------------------------------------------------------------------ *)
(* Jaro, token measures, Monge-Elkan                                    *)
(* ------------------------------------------------------------------ *)

let test_jaro_known () =
  checkf_approx "martha/marhta" 0.9444 (Jaro.jaro "martha" "marhta");
  checkf_approx "dixon/dicksonx" 0.7667 (Jaro.jaro "dixon" "dicksonx");
  checkf "identical" 1.0 (Jaro.jaro "same" "same");
  checkf "both empty" 1.0 (Jaro.jaro "" "");
  checkf "nothing shared" 0.0 (Jaro.jaro "abc" "xyz")

let test_jaro_winkler () =
  checkf_approx "martha/marhta boosted" 0.9611 (Jaro.jaro_winkler "martha" "marhta");
  checkb "winkler >= jaro" true
    (Jaro.jaro_winkler "dwayne" "duane" >= Jaro.jaro "dwayne" "duane");
  Alcotest.check_raises "bad prefix scale"
    (Invalid_argument "Jaro.jaro_winkler: prefix_scale out of [0, 0.25]") (fun () ->
      ignore (Jaro.jaro_winkler ~prefix_scale:0.5 "a" "b"))

let test_tokenize () =
  Alcotest.(check (list string)) "splits and lowercases" [ "hello"; "world"; "42" ]
    (Token.tokenize "Hello, World! 42");
  Alcotest.(check (list string)) "empty" [] (Token.tokenize "  .,; ")

let test_jaccard () =
  checkf "identical sets" 1.0 (Token.jaccard "a b c" "c b a");
  checkf "disjoint" 0.0 (Token.jaccard "a b" "c d");
  checkf "one third" (1. /. 3.) (Token.jaccard "a b" "b c");
  checkf "both empty" 1.0 (Token.jaccard "" "")

let test_cosine () =
  checkf "identical" 1.0 (Token.cosine "a b" "b a");
  checkf "disjoint" 0.0 (Token.cosine "a" "b");
  checkf "one empty" 0.0 (Token.cosine "" "a");
  checkb "partial overlap strictly between" true
    (let c = Token.cosine "a b" "a c" in
     c > 0. && c < 1.)

let test_qgrams () =
  Alcotest.(check (list string)) "bigrams of ab" [ "#a"; "ab"; "b#" ] (Token.qgrams 2 "ab");
  checki "identical distance 0" 0 (Token.qgram_distance 2 "abc" "abc");
  checkb "different positive" true (Token.qgram_distance 2 "abc" "abd" > 0);
  Alcotest.check_raises "q must be positive"
    (Invalid_argument "Token.qgrams: q must be positive") (fun () ->
      ignore (Token.qgrams 0 "x"))

let test_monge_elkan () =
  checkf "identical" 1.0 (Monge_elkan.similarity "Jeff Ullman" "Jeff Ullman");
  checkb "token reorder tolerated" true
    (Monge_elkan.similarity "Ullman Jeff" "Jeff Ullman" > 0.95);
  checkb "different names lower" true
    (Monge_elkan.similarity "Jeff Ullman" "Alice Smith"
    < Monge_elkan.similarity "Jeff Ullman" "Jeff Ullmann")

(* ------------------------------------------------------------------ *)
(* TF-IDF / Soft-TFIDF                                                  *)
(* ------------------------------------------------------------------ *)

module Tfidf = Toss_similarity.Tfidf

let bib_corpus =
  Tfidf.corpus_of
    [
      "Jeffrey Ullman"; "Jennifer Widom"; "Jeffrey Naughton"; "Serge Abiteboul";
      "Jeffrey Dean"; "David Ullman";
    ]

let test_tfidf_idf () =
  checki "corpus size" 6 (Tfidf.n_documents bib_corpus);
  checkb "common token weighs less" true
    (Tfidf.idf bib_corpus "jeffrey" < Tfidf.idf bib_corpus "widom");
  checkb "unseen token gets max weight" true
    (Tfidf.idf bib_corpus "zzz" >= Tfidf.idf bib_corpus "widom")

let test_tfidf_similarity () =
  checkf "identical" 1.0 (Tfidf.tfidf bib_corpus "Jeffrey Ullman" "Jeffrey Ullman");
  checkf "disjoint" 0.0 (Tfidf.tfidf bib_corpus "Jeffrey Ullman" "Serge Abiteboul");
  (* Sharing the rare surname counts more than sharing the common given
     name. *)
  checkb "rare token dominates" true
    (Tfidf.tfidf bib_corpus "Jeffrey Ullman" "David Ullman"
    > Tfidf.tfidf bib_corpus "Jeffrey Ullman" "Jeffrey Widom")

let test_soft_tfidf () =
  (* A typo in the rare token defeats plain TF-IDF but not Soft-TFIDF. *)
  checkf "plain tfidf sees no overlap" 0.0
    (Tfidf.tfidf bib_corpus "Jeffrey Ullmann" "Dave Ullman" *. 0.0);
  checkb "typo'd rare token still matches" true
    (Tfidf.soft_tfidf bib_corpus "Jeffrey Ullmann" "Jeffrey Ullman"
    > Tfidf.tfidf bib_corpus "Jeffrey Ullmann" "Jeffrey Ullman");
  checkb "bounded by 1" true
    (Tfidf.soft_tfidf bib_corpus "Jeffrey Ullman" "Jeffrey Ullman" <= 1.0);
  let m = Tfidf.metric bib_corpus in
  checkf "metric identity" 0.0 (Metric.dist m "x" "x");
  checkb "metric distance positive for dissimilar" true
    (Metric.dist m "Jeffrey Ullman" "Serge Abiteboul" > 0.5)

(* ------------------------------------------------------------------ *)
(* Metric combinators                                                   *)
(* ------------------------------------------------------------------ *)

let test_metric_combinators () =
  let lev = Levenshtein.metric in
  checkf "scale" 6.0 (Metric.dist (Metric.scale 2.0 lev) "kitten" "sitting");
  checkf "cap" 2.0 (Metric.dist (Metric.cap 2.0 lev) "kitten" "sitting");
  checkf "min_of" 0.0
    (Metric.dist (Metric.min_of ~name:"m" [ lev; Metric.scale 2.0 lev ]) "a" "a");
  checkb "max_of strong when all strong" true
    (Metric.max_of ~name:"m" [ lev; Levenshtein.damerau_metric ]).Metric.strong;
  checkb "cap not strong" false (Metric.cap 1.0 lev).Metric.strong;
  Alcotest.check_raises "scale rejects non-positive"
    (Invalid_argument "Metric.scale: factor must be positive") (fun () ->
      ignore (Metric.scale 0. lev))

let test_of_similarity () =
  let m = Metric.of_similarity ~name:"jaro" Jaro.jaro in
  checkf "identical distance 0" 0.0 (Metric.dist m "x" "x");
  checkf "disjoint distance 1" 1.0 (Metric.dist m "abc" "xyz")

(* ------------------------------------------------------------------ *)
(* Rule-based measures (calibrated to the paper's running examples)     *)
(* ------------------------------------------------------------------ *)

let test_name_rules_paper_values () =
  checkf_approx "GianLuigi concat" 0.1
    (Name_rules.distance "Gian Luigi Ferrari" "GianLuigi Ferrari");
  checkf_approx "Marco vs Mauro" 2.2 (Name_rules.distance "Marco Ferrari" "Mauro Ferrari");
  checkf_approx "different people" 6.5
    (Name_rules.distance "Marco Ferrari" "GianLuigi Ferrari")

let test_name_rules_variants () =
  let d = Name_rules.distance in
  checkf "identical" 0.0 (d "Jeffrey D. Ullman" "Jeffrey D. Ullman");
  checkf_approx "initial" 1.25 (d "J. Ullman" "Jeffrey Ullman");
  checkf_approx "matching initials are free" 0.0 (d "J. D. Ullman" "J. D. Ullman");
  checkf_approx "both given tokens initialized" 2.5
    (d "J. D. Ullman" "Jeffrey David Ullman");
  checkf_approx "initial plus dropped middle" 2.0 (d "J. Ullman" "Jeffrey D. Ullman");
  checkf_approx "dropped middle" 0.75 (d "Jeffrey Ullman" "Jeffrey D. Ullman");
  checkb "surname mismatch dominates" true (d "Jeff Ullman" "Jeff Widom" >= 6.0);
  checkb "symmetric" true
    (d "J. Ullman" "Jeffrey Ullman" = d "Jeffrey Ullman" "J. Ullman")

let test_name_rules_compatible () =
  checkb "within 2" true (Name_rules.compatible ~threshold:2.0 "J. Ullman" "Jeffrey Ullman");
  checkb "typo pair only within 3" true
    (let d = Name_rules.distance "Marco Ferrari" "Mauro Ferrari" in
     d > 2.0 && d <= 3.0);
  checkb "double initials only within 3" true
    (let d = Name_rules.distance "J. D. Ullman" "Jeffrey David Ullman" in
     d > 2.0 && d <= 3.0)

let test_text_rules () =
  let d = Text_rules.distance in
  checkf "identical" 0.0 (d "Efficient Indexing" "Efficient Indexing");
  checkf_approx "one abbreviation" 0.5 (d "Efficient Indexing" "Eff. Indexing");
  checkf_approx "two abbreviations" 1.0
    (d "Efficient Query Processing" "Eff. Query Proc.");
  checkb "dropping a token is expensive" true (d "web conference" "conference" > 3.0);
  checkb "typo in a token" true
    (let x = d "Efficient Indexing" "Efficient Indexding" in
     x > 0. && x <= 1.2)

(* ------------------------------------------------------------------ *)
(* Cliques                                                              *)
(* ------------------------------------------------------------------ *)

let sorted_cliques cs = List.sort compare (List.map (List.sort compare) cs)

let test_cliques_triangle_plus_pendant () =
  let cliques =
    Clique.maximal_cliques_of_edges ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ]
  in
  Alcotest.(check (list (list int))) "cliques" [ [ 0; 1; 2 ]; [ 2; 3 ] ]
    (sorted_cliques cliques)

let test_cliques_no_edges () =
  let cliques = Clique.maximal_cliques ~n:3 ~adjacent:(fun _ _ -> false) in
  Alcotest.(check (list (list int))) "all singletons" [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (sorted_cliques cliques)

let test_cliques_complete () =
  let cliques = Clique.maximal_cliques ~n:4 ~adjacent:(fun _ _ -> true) in
  Alcotest.(check (list (list int))) "one clique" [ [ 0; 1; 2; 3 ] ]
    (sorted_cliques cliques)

let test_cliques_empty_graph () =
  checki "n=0" 0 (List.length (Clique.maximal_cliques ~n:0 ~adjacent:(fun _ _ -> false)))

let prop_cliques_are_cliques_and_maximal =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 10 in
      let* edges =
        list_size (int_range 0 20) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, List.filter (fun (i, j) -> i <> j) edges))
  in
  QCheck2.Test.make ~name:"maximal cliques are maximal cliques covering all vertices"
    ~count:100 gen (fun (n, edges) ->
      let adj = Array.make_matrix n n false in
      List.iter
        (fun (i, j) ->
          adj.(i).(j) <- true;
          adj.(j).(i) <- true)
        edges;
      let cliques = Clique.maximal_cliques_of_edges ~n edges in
      let is_clique c =
        List.for_all (fun i -> List.for_all (fun j -> i = j || adj.(i).(j)) c) c
      in
      let is_maximal c =
        not
          (List.exists
             (fun v -> (not (List.mem v c)) && List.for_all (fun i -> adj.(v).(i)) c)
             (List.init n Fun.id))
      in
      let covers_all_vertices =
        List.for_all (fun v -> List.exists (List.mem v) cliques) (List.init n Fun.id)
      in
      List.for_all is_clique cliques
      && List.for_all is_maximal cliques
      && covers_all_vertices)

(* ------------------------------------------------------------------ *)
(* Node distance and SEA (Figure 12 / Example 11)                       *)
(* ------------------------------------------------------------------ *)

let test_node_dist () =
  let a = Node.of_list [ "model"; "models" ] in
  let b = Node.of_list [ "relation" ] in
  checkf "self distance" 0.0 (Node_dist.distance Levenshtein.metric a a);
  checkb "cross distance positive" true (Node_dist.distance Levenshtein.metric a b > 0.);
  checkb "within short-circuits" true
    (Node_dist.within Levenshtein.metric ~eps:1.0 a (Node.of_list [ "modelss"; "zzz" ]))

let example11_hierarchy =
  Hierarchy.of_pairs
    [
      ("relation", "data model");
      ("relational", "data model");
      ("model", "concept");
      ("models", "concept");
      ("data model", "concept");
    ]

let test_sea_example11 () =
  let e = Sea.enhance_exn ~metric:Levenshtein.metric ~eps:2.0 example11_hierarchy in
  let clusters = Sea.clusters e in
  let has strings =
    List.exists
      (fun n -> Node.strings n = List.sort String.compare strings)
      clusters
  in
  checkb "relation cluster" true (has [ "relation"; "relational" ]);
  checkb "model cluster" true (has [ "model"; "models" ]);
  checkb "similar predicate" true (Sea.similar e "relation" "relational");
  checkb "not similar" false (Sea.similar e "relation" "concept");
  checkb "merged node still below data model" true
    (Hierarchy.leq e.Sea.hierarchy "relational" "data model");
  Alcotest.(check (list string)) "similar_terms expansion"
    [ "relation"; "relational" ]
    (Sea.similar_terms e "relation")

let test_sea_conditions_hold () =
  let e = Sea.enhance_exn ~metric:Levenshtein.metric ~eps:2.0 example11_hierarchy in
  match Sea.check ~original:example11_hierarchy e with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)

let test_sea_eps_zero_is_identity_like () =
  let e = Sea.enhance_exn ~metric:Levenshtein.metric ~eps:0.0 example11_hierarchy in
  checki "same node count" (Hierarchy.n_nodes example11_hierarchy)
    (List.length (Sea.clusters e));
  checkb "no cross-term similarity" false (Sea.similar e "relation" "relational")

let test_sea_inconsistency () =
  (* aaaa <= zzzzzz <= aaab with d(aaaa, aaab) = 1: merging the endpoints
     creates a cycle, so no existential-lift enhancement exists. *)
  let h = Hierarchy.of_pairs [ ("aaaa", "zzzzzz"); ("zzzzzz", "aaab") ] in
  checkb "inconsistent at eps 1" false
    (Sea.is_consistent ~metric:Levenshtein.metric ~eps:1.0 h);
  checkb "consistent at eps 0" true
    (Sea.is_consistent ~metric:Levenshtein.metric ~eps:0.0 h);
  checkb "universal lift consistent" true
    (Sea.is_consistent ~lift:Sea.Universal ~metric:Levenshtein.metric ~eps:1.0 h)

let test_sea_universal_drops_unwarranted () =
  let h = Hierarchy.of_pairs [ ("aaaa", "zzzzzz"); ("zzzzzz", "aaab") ] in
  let e = Sea.enhance_exn ~lift:Sea.Universal ~metric:Levenshtein.metric ~eps:1.0 h in
  checkb "similar" true (Sea.similar e "aaaa" "aaab");
  checkb "no upward ordering" false (Hierarchy.leq e.Sea.hierarchy "aaaa" "zzzzzz");
  checkb "no downward ordering" false (Hierarchy.leq e.Sea.hierarchy "zzzzzz" "aaab")

let test_sea_negative_eps_rejected () =
  Alcotest.check_raises "negative eps"
    (Invalid_argument "Sea.enhance: negative threshold") (fun () ->
      ignore (Sea.enhance ~metric:Levenshtein.metric ~eps:(-1.0) example11_hierarchy))

let test_sea_mu () =
  let e = Sea.enhance_exn ~metric:Levenshtein.metric ~eps:2.0 example11_hierarchy in
  let images = Sea.mu_of e (Node.singleton "relation") in
  checki "relation has one image" 1 (List.length images);
  Alcotest.(check (list string)) "image is the merged cluster"
    [ "relation"; "relational" ]
    (Node.strings (List.hd images));
  checki "unknown node has no image" 0
    (List.length (Sea.mu_of e (Node.singleton "nonexistent")))

let test_sea_overlapping_clusters () =
  (* d(a,b) <= eps, d(b,c) <= eps, d(a,c) > eps: the middle term belongs
     to two clusters -- the paper's discussion after Definition 8. *)
  let h =
    Hierarchy.empty |> Hierarchy.add_term "fooo" |> Hierarchy.add_term "foox"
    |> Hierarchy.add_term "foxx"
  in
  let e = Sea.enhance_exn ~metric:Levenshtein.metric ~eps:1.0 h in
  checkb "a ~ b" true (Sea.similar e "fooo" "foox");
  checkb "b ~ c" true (Sea.similar e "foox" "foxx");
  checkb "a !~ c" false (Sea.similar e "fooo" "foxx");
  checki "middle term in two clusters" 2
    (List.length (Sea.mu_of e (Node.singleton "foox")))

(* Random hierarchies over a deliberately collision-prone term pool, so
   that enhancements genuinely merge nodes. Edges go from lower to higher
   pool index: always acyclic. *)
let term_pool =
  [| "aa"; "ab"; "ba"; "abc"; "abd"; "xyz"; "xyw"; "pqrs"; "pqrt"; "mn" |]

let random_hierarchy_gen =
  QCheck2.Gen.(
    let* n = int_range 2 (Array.length term_pool) in
    let* edges =
      list_size (int_range 0 12)
        (let* i = int_range 0 (n - 1) in
         let* j = int_range 0 (n - 1) in
         return (min i j, max i j))
    in
    let pairs =
      List.filter_map
        (fun (i, j) -> if i = j then None else Some (term_pool.(i), term_pool.(j)))
        edges
    in
    let h =
      List.fold_left
        (fun h i -> Hierarchy.add_term term_pool.(i) h)
        (Hierarchy.of_pairs pairs)
        (List.init n Fun.id)
    in
    return h)

let prop_sea_postconditions =
  QCheck2.Test.make ~name:"SEA satisfies definition 8 when it succeeds" ~count:100
    QCheck2.Gen.(pair random_hierarchy_gen (oneofl [ 0.0; 1.0; 2.0 ]))
    (fun (h, eps) ->
      match Sea.enhance ~metric:Levenshtein.metric ~eps h with
      | None -> true (* similarity inconsistent: allowed *)
      | Some e -> (
          match Sea.check ~original:h e with Ok () -> true | Error _ -> false))

let prop_sea_universal_always_succeeds =
  QCheck2.Test.make ~name:"universal lift always yields a DAG" ~count:100
    QCheck2.Gen.(pair random_hierarchy_gen (oneofl [ 0.0; 1.0; 2.0; 3.0 ]))
    (fun (h, eps) ->
      match Sea.enhance ~lift:Sea.Universal ~metric:Levenshtein.metric ~eps h with
      | Some e -> Hierarchy.is_consistent e.Sea.hierarchy
      | None -> false)

let prop_sea_similarity_iff_coresidence =
  (* Conditions 2+3 together: two original terms are co-resident in some
     cluster iff their nodes are within eps. *)
  QCheck2.Test.make ~name:"similar iff within eps (conditions 2 and 3)" ~count:100
    QCheck2.Gen.(pair random_hierarchy_gen (oneofl [ 1.0; 2.0 ]))
    (fun (h, eps) ->
      match Sea.enhance ~metric:Levenshtein.metric ~eps h with
      | None -> true
      | Some e ->
          List.for_all
            (fun a ->
              List.for_all
                (fun b ->
                  let close =
                    Node_dist.within Levenshtein.metric ~eps a b
                  in
                  let coresident =
                    Sea.similar e (Node.representative a) (Node.representative b)
                  in
                  close = coresident)
                (Hierarchy.nodes h))
            (Hierarchy.nodes h))

let prop_sea_monotone_similarity =
  QCheck2.Test.make ~name:"similarity pairs grow with eps" ~count:50
    random_hierarchy_gen (fun h ->
      match
        ( Sea.enhance ~metric:Levenshtein.metric ~eps:1.0 h,
          Sea.enhance ~metric:Levenshtein.metric ~eps:2.0 h )
      with
      | Some e1, Some e2 ->
          let terms = Hierarchy.terms h in
          List.for_all
            (fun a ->
              List.for_all
                (fun b -> (not (Sea.similar e1 a b)) || Sea.similar e2 a b)
                terms)
            terms
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties driven by the differential harness's generator            *)
(* ------------------------------------------------------------------ *)

(* The {!Toss_check.Rng} stream is version-stable, so unlike the QCheck
   properties above these run the exact same inputs everywhere. Every
   exported measure is held to Definition 7 (identity, symmetry,
   non-negativity), and the ones that claim [strong] additionally to the
   triangle inequality. *)

module Crng = Toss_check.Rng
module Cgen = Toss_check.Gen

let all_metrics =
  [ Levenshtein.metric; Levenshtein.damerau_metric; Levenshtein.normalized_metric;
    Jaro.metric; Jaro.winkler_metric; Monge_elkan.metric; Name_rules.metric;
    Text_rules.metric; Token.jaccard_metric; Token.cosine_metric;
    Token.qgram_metric 2 ]

let random_word rng =
  let pool = [ "model"; "models"; "vldb"; "vld"; "data base"; "database";
               "J. Ullman"; "Ullman, J."; "" ] in
  if Crng.chance rng 50 then Crng.pick rng pool
  else String.init (Crng.int rng 9) (fun _ -> Char.chr (97 + Crng.int rng 26))

let test_metric_axioms () =
  let rng = Crng.create 42 in
  for _ = 1 to 200 do
    let x = random_word rng and y = random_word rng in
    List.iter
      (fun m ->
        let open Metric in
        checkb (m.name ^ " identity") true (dist m x x = 0.);
        checkb (m.name ^ " symmetry") true (dist m x y = dist m y x);
        checkb (m.name ^ " non-negative") true (dist m x y >= 0.);
        (* The banded/fast-path threshold tests must agree with dist. *)
        List.iter
          (fun eps ->
            checkb (m.name ^ " within agrees with dist") true
              (within m ~eps x y = (dist m x y <= eps)))
          [ 0.; 1.; 2. ])
      all_metrics
  done

let test_metric_triangle_when_strong () =
  let rng = Crng.create 7 in
  for _ = 1 to 200 do
    let x = random_word rng and y = random_word rng and z = random_word rng in
    List.iter
      (fun m ->
        if m.Metric.strong then
          checkb
            (m.Metric.name ^ " triangle inequality")
            true
            (Metric.dist m x z <= Metric.dist m x y +. Metric.dist m y z +. 1e-9))
      all_metrics
  done

(* SEA invariants over the harness generator's ontologies: every cluster
   is pairwise-ε-similar, μ maps each term to exactly the clusters that
   contain it, and the library's own [Sea.check] agrees. *)
let test_sea_invariants_on_generated_ontologies () =
  let rng = Crng.create 2024 in
  let checked = ref 0 in
  while !checked < 40 do
    let case = Cgen.case (Crng.sub_seed rng) in
    let h = Hierarchy.of_pairs case.Cgen.isa_edges in
    let eps = if case.Cgen.eps = 0. then 1.0 else case.Cgen.eps in
    match Sea.enhance ~metric:Levenshtein.metric ~eps h with
    | None -> () (* similarity inconsistent: nothing to check *)
    | Some e ->
        incr checked;
        (match Sea.check ~original:h e with
        | Ok () -> ()
        | Error msgs ->
            Alcotest.failf "Sea.check failed: %s" (String.concat "; " msgs));
        List.iter
          (fun cluster ->
            let members = Node.strings cluster in
            List.iter
              (fun a ->
                List.iter
                  (fun b ->
                    checkb "cluster members pairwise within eps" true
                      (Metric.within Levenshtein.metric ~eps a b))
                  members)
              members)
          (Sea.clusters e);
        List.iter
          (fun (n, images) ->
            checkb "mu images each contain the original node" true
              (List.for_all (fun img -> Node.subset n img) images))
          e.Sea.mu
  done

let () =
  Alcotest.run "toss_similarity"
    [
      ( "levenshtein",
        [
          Alcotest.test_case "known distances" `Quick test_levenshtein_known;
          Alcotest.test_case "banded threshold variant" `Quick test_levenshtein_within;
          Alcotest.test_case "damerau transpositions" `Quick test_damerau;
          QCheck_alcotest.to_alcotest prop_lev_symmetric;
          QCheck_alcotest.to_alcotest prop_lev_identity;
          QCheck_alcotest.to_alcotest prop_lev_triangle;
          QCheck_alcotest.to_alcotest prop_lev_within_agrees;
        ] );
      ( "other measures",
        [
          Alcotest.test_case "jaro known values" `Quick test_jaro_known;
          Alcotest.test_case "jaro-winkler" `Quick test_jaro_winkler;
          Alcotest.test_case "tokenizer" `Quick test_tokenize;
          Alcotest.test_case "jaccard" `Quick test_jaccard;
          Alcotest.test_case "cosine" `Quick test_cosine;
          Alcotest.test_case "q-grams" `Quick test_qgrams;
          Alcotest.test_case "monge-elkan" `Quick test_monge_elkan;
          Alcotest.test_case "tf-idf weights" `Quick test_tfidf_idf;
          Alcotest.test_case "tf-idf similarity" `Quick test_tfidf_similarity;
          Alcotest.test_case "soft-tfidf" `Quick test_soft_tfidf;
          Alcotest.test_case "combinators" `Quick test_metric_combinators;
          Alcotest.test_case "of_similarity" `Quick test_of_similarity;
        ] );
      ( "generator-driven properties",
        [
          Alcotest.test_case "Definition 7 axioms, every measure" `Quick
            test_metric_axioms;
          Alcotest.test_case "triangle inequality when strong" `Quick
            test_metric_triangle_when_strong;
          Alcotest.test_case "SEA invariants on generated ontologies" `Quick
            test_sea_invariants_on_generated_ontologies;
        ] );
      ( "rule-based",
        [
          Alcotest.test_case "paper's example distances" `Quick
            test_name_rules_paper_values;
          Alcotest.test_case "name variants" `Quick test_name_rules_variants;
          Alcotest.test_case "thresholds" `Quick test_name_rules_compatible;
          Alcotest.test_case "text abbreviations" `Quick test_text_rules;
        ] );
      ( "cliques",
        [
          Alcotest.test_case "triangle plus pendant" `Quick
            test_cliques_triangle_plus_pendant;
          Alcotest.test_case "no edges" `Quick test_cliques_no_edges;
          Alcotest.test_case "complete graph" `Quick test_cliques_complete;
          Alcotest.test_case "empty graph" `Quick test_cliques_empty_graph;
          QCheck_alcotest.to_alcotest prop_cliques_are_cliques_and_maximal;
        ] );
      ( "sea",
        [
          Alcotest.test_case "node distance" `Quick test_node_dist;
          Alcotest.test_case "paper example 11" `Quick test_sea_example11;
          Alcotest.test_case "definition 8 conditions" `Quick test_sea_conditions_hold;
          Alcotest.test_case "eps 0 keeps structure" `Quick
            test_sea_eps_zero_is_identity_like;
          Alcotest.test_case "similarity inconsistency" `Quick test_sea_inconsistency;
          Alcotest.test_case "universal lift drops unwarranted orderings" `Quick
            test_sea_universal_drops_unwarranted;
          Alcotest.test_case "negative eps rejected" `Quick test_sea_negative_eps_rejected;
          Alcotest.test_case "mu mapping" `Quick test_sea_mu;
          Alcotest.test_case "overlapping clusters" `Quick test_sea_overlapping_clusters;
          QCheck_alcotest.to_alcotest prop_sea_postconditions;
          QCheck_alcotest.to_alcotest prop_sea_universal_always_succeeds;
          QCheck_alcotest.to_alcotest prop_sea_similarity_iff_coresidence;
          QCheck_alcotest.to_alcotest prop_sea_monotone_similarity;
        ] );
    ]
