The toss CLI end to end: generate a small deterministic bibliography,
inspect it, and query it under both semantics.

  $ toss generate --papers 8 --seed 3 -o demo.xml
  $ toss info demo.xml
  root tag:  dblp
  elements:  61
  bytes:     2174
  tags:      author, booktitle, dblp, inproceedings, pages, title, year

XPath goes straight to the store:

  $ toss xpath demo.xml "//inproceedings[1]/title"
  1 node(s)
  <title>Scalable Indexing for Graph Data in Peer-to-Peer Networks [P0000]</title>

The Ontology Maker derives part-of from nesting:

  $ toss ontology demo.xml --relation part-of | head -3
  part-of hierarchy: 14 nodes, 6 edges
    {author, writer} <= {conference paper, inproceedings}
    {booktitle, conference, venue} <= {conference paper, inproceedings}

A TQL query under TOSS reaches venues through the isa hierarchy; the
same query under TAX returns nothing (no stored venue literally contains
the words "database conference"):

  $ toss query demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1 | cut -d' ' -f1-2
  6 result(s)
  $ toss query --mode tax demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1 | cut -d' ' -f1-2
  0 result(s)

Graphviz export:

  $ toss dot demo.xml | head -1
  digraph "isa" {

Tracing: the per-phase breakdown and nested span tree, printed to
stdout after the results (times stripped for determinism — the span
names and nesting are the contract). By default the pattern is compiled
into a single-pass matcher: the execute phase issues no store queries
(it stays empty) and the assemble phase carries one match span per
document:

  $ toss query --trace demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' 2>/dev/null | sed -n '/^phase breakdown:/,$p' | awk '{print $1}'
  phase
  phase
  rewrite
  execute
  assemble
  total
  trace:
  executor.select
  rewrite
  execute
  assemble
  match

--no-compile falls back to the interpreted scan/prune/embed pipeline —
same answers, and the classic operator spans: one xpath span per label
query, a prune span where the planner drops candidate-free documents,
and one embed span per document kept:

  $ toss query --no-compile demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1 | cut -d' ' -f1-2
  6 result(s)
  $ toss query --no-compile --trace demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' 2>/dev/null | sed -n '/^trace:/,$p' | awk '{print $1}'
  trace:
  executor.select
  rewrite
  execute
  xpath
  xpath
  assemble
  prune
  embed

EXPLAIN ANALYZE annotates the plan with the actual per-operator counts.
The compiled matcher reports the arena nodes it visited and the matches
it found per document:

  $ toss query --explain-analyze demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | grep -o 'nodes=[0-9]*'
  nodes=61
  $ toss query --explain-analyze demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | grep -o 'matches=[0-9]*'
  matches=6

Under --no-compile the annotations are the interpreted pipeline's: how
many nodes each rewritten XPath step returned, and the embedding funnel
per document. The planner runs the scans most-selective-first, so the
narrower booktitle query (6 rows) comes before the bare inproceedings
scan (8 rows):

  $ toss query --no-compile --explain-analyze demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | grep -o 'rows=[0-9]*'
  rows=6
  rows=8
  $ toss query --no-compile --explain-analyze demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | grep -o 'embeddings=[0-9]*'
  embeddings=6

EXPLAIN (without ANALYZE) prints the chosen physical plan up front and
does not execute the query. The default plan is the compiled matcher:
one state per pattern node, each carrying its SEO-expanded predicates
as inline tests (set-membership where the ontology closure is finite,
direct evaluation otherwise). No result line is printed:

  $ toss query --explain demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1
  EXPLAIN
  $ toss query --explain demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | sed -n '/^physical plan:/,$p'
  physical plan:
    plan mode=toss
    compiled-match states=2 sl=[1]
      state #1 (root): #1.tag = "inproceedings" [string-eq]
      state #2 (pc of #1): #2.tag = "booktitle" [string-eq]; #2.content isa "database conference" [set:11]
  $ toss query --explain demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | awk '/result/{n++} END{print n+0}'
  0

With --no-compile the plan is the interpreted pipeline: scans ordered
by estimated selectivity, candidate-doc pruning, then the embedding
operator:

  $ toss query --no-compile --explain demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | sed -n '/^physical plan:/,$p' | awk '{print $1}'
  physical
  plan
  embed
  doc-prune
  candidate-filter
  scan
  scan
  $ toss query --no-compile --explain demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | grep -o '(~[0-9]* rows)'
  (~6 rows)
  (~8 rows)

--no-planner is the interpreted pipeline's second escape hatch: same
answers through the same plan interpreter, but scans stay in rewrite
order, nothing is pruned, and no row estimates are attached:

  $ toss query --no-planner demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1 | cut -d' ' -f1-2
  6 result(s)
  $ toss query --explain --no-planner --no-compile demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | sed -n '/^physical plan:/,$p' | awk '{print $1}'
  physical
  plan
  embed
  candidate-filter
  scan
  scan

Similarity joins: --right FILE (repeatable) turns the query into a
condition join — the positional files are the left collection, the
--right files the right one. A ~ (or isa) cross-condition lowers to
the signature-indexed sim-pair operator whenever the build side has
at least two documents; the plan names the signature scheme and the
overlap policy, and always carries the full recheck condition:

  $ cat > lpapers.xml <<'EOF'
  > <article><title>Tree Patterns</title><venue>VLDB</venue></article>
  > EOF
  $ cat > rev1.xml <<'EOF'
  > <review><forum>VLDB</forum><score>8</score></review>
  > EOF
  $ cat > rev2.xml <<'EOF'
  > <review><forum>ICDE</forum><score>7</score></review>
  > EOF
  $ JOIN='MATCH #0:pt(//#1:article(/#2:venue), //#3:review(/#4:forum)) WHERE #2.content ~ #4.content SELECT #1,#3'
  $ toss query lpapers.xml --right rev1.xml --right rev2.xml "$JOIN" --explain
  EXPLAIN
  plan mode=toss
  dedup
    sim-pair on #2.content ~ #4.content sig=cluster overlap=adaptive recheck ((((#1.tag = "article" and #2.tag = "venue") and #3.tag = "review") and #4.tag = "forum") and #2.content ~ #4.content)
      compiled-match side=left states=2 sl=[1]
        state #1 (root): #1.tag = "article" [string-eq]
        state #2 (pc of #1): #2.tag = "venue" [string-eq]
      compiled-match side=right states=2 sl=[3]
        state #3 (root): #3.tag = "review" [string-eq]
        state #4 (pc of #3): #4.tag = "forum" [string-eq]

The join runs through the same executor as the CLI's selections:

  $ toss query lpapers.xml --right rev1.xml --right rev2.xml "$JOIN" | head -1 | cut -d' ' -f1-2
  1 result(s)

EXPLAIN ANALYZE annotates the pair span with the probe's actuals —
how many overlap candidates the signature index produced and how many
survived the recheck:

  $ toss query lpapers.xml --right rev1.xml --right rev2.xml "$JOIN" --explain-analyze | grep -o 'strategy=sim.*'
  strategy=sim  candidates=1  verified=1  indexed=2  fallback=0  results=1

--no-simjoin keeps the nested-loop pairing (the escape hatch and the
differential reference); the answers are identical:

  $ toss query lpapers.xml --right rev1.xml --right rev2.xml "$JOIN" --no-simjoin --explain | grep -o 'nested-loop-pair'
  nested-loop-pair
  $ toss query lpapers.xml --right rev1.xml --right rev2.xml "$JOIN" --no-simjoin | head -1 | cut -d' ' -f1-2
  1 result(s)

The two sim-join faults bracket the operator's proof obligations:
candidate completeness (a too-short prefix misses pairs) and
soundness (skipping the recheck invents pairs). Both are caught and
shrunk to a couple of documents per side:

  $ toss check --seed 42 --runs 500 --op join --inject-fault simjoin-prefix-too-short | head -4
  DISCREPANCY on run 22 (case seed 336901045567871910)
    mode: toss, compile=on planner=on index=on
    join result multiset differs (oracle 1, executor 0)
    shrunk to 3 document(s)
  $ toss check --seed 42 --runs 500 --op join --inject-fault simjoin-no-recheck | head -4
  DISCREPANCY on run 15 (case seed 3067506354810381239)
    mode: toss, compile=on planner=on index=on
    join result multiset differs (oracle 1, executor 4)
    shrunk to 3 document(s)

The profiler streams the query's structured events as JSONL; a
compiled run issues no store queries, so there are no xpath_exec
events:

  $ toss query --profile events.jsonl demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' > /dev/null
  $ grep -o '"kind":"[a-z_]*"' events.jsonl
  "kind":"query_start"
  "kind":"rewrite_done"
  "kind":"embed_done"
  "kind":"query_end"
  $ toss query --no-compile --profile events2.jsonl demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' > /dev/null
  $ grep -o '"kind":"[a-z_]*"' events2.jsonl
  "kind":"query_start"
  "kind":"rewrite_done"
  "kind":"xpath_exec"
  "kind":"xpath_exec"
  "kind":"embed_done"
  "kind":"query_end"

The slow-query log writes one replayable record (full event stream plus
span tree) to stderr for queries at or over the threshold; at 0ms every
query qualifies:

  $ toss query --slow-ms 0 demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' 2>&1 >/dev/null | grep -c '"type":"slow_query"'
  1

The stats command reports the executor's funnel and the metrics
registry instead of results:

  $ toss stats demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1
  6 result(s): 61 candidate(s) -> 6 embedding(s) -> 6 witness(es)
  $ toss stats demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | sed -n '/^metrics:/,$p' | awk '{print $1}'
  metrics:
  compile.matchers
  compile.matches
  compile.nodes.visited
  executor.candidates
  executor.embeddings
  executor.join.total
  executor.phase.seconds{phase="assemble"}
  executor.phase.seconds{phase="execute"}
  executor.phase.seconds{phase="rewrite"}
  executor.results
  executor.select.total
  plan.docs.pruned
  planner.joins.hash
  planner.joins.nested_loop
  planner.joins.sim
  planner.plans
  planner.plans.compiled
  pool.queue_wait.seconds
  rewrite.cache.hits
  rewrite.cache.misses
  rewrite.degraded
  rewrite.label_queries
  rewrite.patterns
  rewrite.queries.seo_dependent
  rewrite.queries.seo_independent
  server.cache.entries
  server.cache.evictions
  server.cache.hits
  server.cache.invalidations
  server.cache.misses
  server.connections
  server.inflight
  server.queue.depth
  server.shed.total
  store.documents.added
  store.eval.index_starts
  store.eval.indexed_paths
  store.eval.queries
  store.eval.results
  store.eval.scanned_paths
  store.index.builds
  store.index.eq_hits
  store.index.eq_lookups
  store.index.token_hits
  store.index.token_lookups
  tax.embed.candidates_considered
  tax.embed.embeddings
  tax.embed.enumerations
  tax.embed.structural_bindings

The differential correctness harness: seeded random queries and corpora,
every engine configuration checked against a naive reference oracle.

  $ toss check --seed 42 --runs 50
  PASS: 50 cases, all engine configurations agree with the oracle

An injected planner fault must be caught, shrunk to a tiny corpus, and
reported with a paste-into-test repro; a discrepancy exits 1:

  $ toss check --seed 42 --runs 200 --inject-fault no-dedup --repro-out repro.ml
  DISCREPANCY on run 5 (case seed 175383196535490812)
    mode: tax, compile=on planner=on index=on
    select result multiset differs (oracle 1, executor 2)
    shrunk to 1 document(s)
    oracle (1):
    <item/>
    executor (2):
    <item/>
    <item/>
  shrunk case:
  (* seed 175383196535490812 *)
  let docs = [ Parser.parse_exn {xml|<item><item/></item>|xml} ] in
  let isa_edges = [  ] in
  let part_edges = [  ] in
  let pattern = Pattern.v (Pattern.leaf 1)
    (True) in
  let sl = [  ] in
  (* eps = 1; op = select *)
  paste-into-test repro:
  (* mode=tax compile=on planner=on index=on — select result multiset differs (oracle 1, executor 2) *)
  (* seed 175383196535490812 *)
  let docs = [ Parser.parse_exn {xml|<item><item/></item>|xml} ] in
  let isa_edges = [  ] in
  let part_edges = [  ] in
  let pattern = Pattern.v (Pattern.leaf 1)
    (True) in
  let sl = [  ] in
  (* eps = 1; op = select *)
  repro written to repro.ml
  [1]

  $ head -3 repro.ml
  (* mode=tax compile=on planner=on index=on — select result multiset differs (oracle 1, executor 2) *)
  (* seed 175383196535490812 *)
  let docs = [ Parser.parse_exn {xml|<item><item/></item>|xml} ] in

A fault injected into the compiled matcher itself — dropping the
bubble-up of descendant-edge matches — is likewise caught and shrunk
to a minimal corpus (here a join, whose sides hang off the product
root by ad edges):

  $ toss check --seed 42 --runs 200 --inject-fault compile-skip-descendant-edge | head -4
  DISCREPANCY on run 98 (case seed 979899288619961539)
    mode: tax, compile=on planner=on index=on
    join result multiset differs (oracle 2, executor 0)
    shrunk to 2 document(s)

Unknown fault names are rejected:

  $ toss check --inject-fault bogus
  toss: unknown fault "bogus" (expected one of: none, hash-no-recheck, prune-first-only, no-dedup, compile-skip-descendant-edge, simjoin-prefix-too-short, simjoin-no-recheck)
  Usage: toss check [OPTION]…
  Try 'toss check --help' or 'toss --help' for more information.
  [124]
