The query server end to end: a Unix-domain socket, a pool of worker
domains with admission control, per-request deadlines, and the
versioned result cache. Socket paths must stay short (the kernel's sun_path limit), so
everything lives in a fresh temp directory.

  $ D=$(mktemp -d)
  $ S=$D/toss.sock

Flag and usage errors come back before any socket is touched:

  $ toss serve --socket $S --domains -1 2>&1 | grep toss:
  toss: unknown option '-1'.
  $ toss client --socket $S frobnicate 2>&1 | grep toss:
  toss: unknown op "frobnicate" (expected ping, insert, query, join, explain, stats, metrics or shutdown)
  $ toss client --socket $S insert bib 2>&1 | grep toss:
  toss: insert needs COLLECTION and an XML FILE
  $ toss client --socket $D/none.sock ping 2>&1 | sed "s#$D#DIR#"
  toss: cannot connect to "DIR/none.sock": No such file or directory

Start a server with a small pool and a durable database directory:

  $ toss serve --socket $S --db $D/db --domains 2 > serve.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S $S ] && break; sleep 0.1; done

Ping, then insert a generated document (responses are one JSON line
each; the insert reports the assigned doc id and the new collection
version):

  $ toss client --socket $S ping
  {"pong":true}
  $ toss generate --papers 5 --seed 1 -o doc.xml
  $ toss client --socket $S insert bib doc.xml
  {"collection":"bib","doc_id":0,"version":1}

A query misses cold and hits warm:

  $ Q='MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1'
  $ toss client --socket $S query bib "$Q" | grep -o '"cache":"[a-z]*"'
  "cache":"miss"
  $ toss client --socket $S query bib "$Q" | grep -o '"version":[0-9]*,.*"cache":"[a-z]*"' | sed 's/,.*,/,/'
  "version":1,"cache":"hit"

An insert bumps the version, so the next query misses (and then warms
the cache for the new version):

  $ toss client --socket $S insert bib doc.xml
  {"collection":"bib","doc_id":1,"version":2}
  $ toss client --socket $S query bib "$Q" | grep -o '"cache":"[a-z]*"'
  "cache":"miss"
  $ toss client --socket $S query bib "$Q" | grep -o '"version":[0-9]*,.*"cache":"[a-z]*"' | sed 's/,.*,/,/'
  "version":2,"cache":"hit"

Queries pin the version they started on: warming version 1's cache
entry above did not disturb version 2's, and both versions' answers
stayed addressable by their own keys — the version field in each
response names the snapshot that produced it. Replaying the version-1
query text now answers at version 2 (reads always pin the newest
snapshot), consistently with the cache misses above.

Typed wire errors: an unknown collection, and a request whose deadline
has already passed (the exact failure point varies, the code does not):

  $ toss client --socket $S query nope "$Q"
  error unknown_collection: unknown collection "nope"
  [1]
  $ toss client --socket $S --deadline-ms 0 query bib "$Q" 2>&1 | sed 's/exceeded .*/exceeded/'
  error deadline_exceeded: deadline exceeded

The closed-loop bench exits cleanly when every request succeeds:

  $ toss client --socket $S --bench 40 --concurrency 4 query bib "$Q" | grep -o '"requests":40,"ok":40'
  toss client: note: --bench is closed-loop and understates tail latency under load; prefer `toss loadgen` (open-loop)
  "requests":40,"ok":40

Explain over the wire returns the same plan the server will run — by
default the compiled single-pass matcher, one state per pattern node:

  $ toss client --socket $S explain bib "$Q" | grep -o 'compiled-match states=[0-9]*'
  compiled-match states=2

A join over the wire pins both collections atomically and names both
pinned versions in its answer. Joins bypass the result cache (its
entries are keyed and invalidated per single collection), so no cache
status is stamped:

  $ toss client --socket $S insert reviews doc.xml
  {"collection":"reviews","doc_id":0,"version":1}
  $ toss client --socket $S insert reviews doc.xml
  {"collection":"reviews","doc_id":1,"version":2}
  $ J='MATCH #0:pt(//#1:inproceedings(/#2:booktitle), //#3:inproceedings(/#4:booktitle)) WHERE #2.content ~ #4.content SELECT #1,#3'
  $ toss client --socket $S join bib reviews "$J" | grep -o '"left":"bib","right":"reviews","left_version":2,"right_version":2'
  "left":"bib","right":"reviews","left_version":2,"right_version":2
  $ toss client --socket $S join bib reviews "$J" | grep -c '"cache"'
  0
  [1]
  $ toss client --socket $S join bib nope "$J"
  error unknown_collection: unknown collection "nope"
  [1]

Server-side observability over the wire: the cache counters moved.

  $ toss client --socket $S stats --table | awk '$1 == "server.cache.hits" && $2 > 0 { print "cache hits > 0" }'
  cache hits > 0

The same registry as a Prometheus text exposition: the pool's
queue-wait histogram is registered at startup, and the per-op request
latency carries its label. Histograms end in a +Inf bucket whose count
equals the sample count:

  $ toss client --socket $S metrics | grep '^# TYPE pool_queue_wait_seconds'
  # TYPE pool_queue_wait_seconds histogram
  $ toss client --socket $S metrics | grep -c '^pool_queue_wait_seconds_bucket{le="+Inf"}'
  1
  $ toss client --socket $S metrics | grep -c '^server_request_seconds_bucket{op="query",le="+Inf"}'
  1

A second server refuses a socket something is already listening on,
and leaves the live server's socket alone:

  $ toss serve --socket $S 2>&1 | sed "s#$D#DIR#"
  toss: "DIR/toss.sock": a server is already listening on this socket
  $ toss client --socket $S ping
  {"pong":true}

Admission control: a server with no worker domains and no queue sheds every
pooled request with the typed overloaded error, while ping keeps
answering inline:

  $ S2=$D/over.sock
  $ toss serve --socket $S2 --domains 0 --max-queue 0 > serve2.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S $S2 ] && break; sleep 0.1; done
  $ toss client --socket $S2 ping
  {"pong":true}
  $ toss client --socket $S2 query bib "$Q"
  error overloaded: queue full
  [1]
  $ toss client --socket $S2 shutdown
  {"stopping":true}

Request-scoped tracing: a server with an access log, span sampling on
every request, and a slow-query log at threshold 0 (so everything is
slow). The client names its own trace id; the server echoes it into
both logs.

  $ S3=$D/trace.sock
  $ toss serve --socket $S3 --domains 2 --access-log $D/access.jsonl \
  >     --trace-sample 1 --slow-ms 0 > serve3.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S $S3 ] && break; sleep 0.1; done
  $ toss client --socket $S3 insert bib doc.xml
  {"collection":"bib","doc_id":0,"version":1}
  $ toss client --socket $S3 --trace-id cram-query-1 --no-cache query bib "$Q" | grep -o '"cache":"[a-z]*"'
  "cache":"miss"
  $ toss client --socket $S3 shutdown
  {"stopping":true}

One access-log record per request — written before the response is
sent, so all three are guaranteed to be on disk by now. The query's
record carries the client's trace id and (sampled) the span tree; the
slow log keyed the query's events by the same id:

  $ wc -l < $D/access.jsonl
  3
  $ grep -c '"trace_id":"cram-query-1"' $D/access.jsonl
  1
  $ grep '"trace_id":"cram-query-1"' $D/access.jsonl | grep -c '"trace":'
  1
  $ grep -c '"type":"slow_query","trace_id":"cram-query-1"' serve3.log
  1

Deadlines cancel a compiled match mid-arena: on a fresh server the
first query over a large corpus must first build the ontology (far
longer than the 5ms budget), so by the time the matcher starts its
arena pass the deadline has certainly expired and the very first
cooperative checkpoint inside the match loop unwinds the request. The
reply is the typed error alone — no partial witnesses leak:

  $ S4=$D/deadline.sock
  $ toss serve --socket $S4 --domains 4 > serve4.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S $S4 ] && break; sleep 0.1; done
  $ toss generate --papers 300 --seed 4 -o big.xml
  $ toss client --socket $S4 insert bib big.xml
  {"collection":"bib","doc_id":0,"version":1}
  $ toss client --socket $S4 --deadline-ms 5 --no-cache query bib "$Q" > reply.txt 2>&1
  [1]
  $ cat reply.txt
  error deadline_exceeded: deadline exceeded during execution
  $ grep -c '<' reply.txt
  0
  [1]

The same cooperative checkpoint runs inside the similarity join's
probe loop, so a join over the big corpus is cancellable mid-pairing
too — again the typed error alone, never partial witnesses, with all
four worker domains up:

  $ toss client --socket $S4 insert reviews big.xml
  {"collection":"reviews","doc_id":0,"version":1}
  $ toss client --socket $S4 insert reviews big.xml
  {"collection":"reviews","doc_id":1,"version":2}
  $ J='MATCH #0:pt(//#1:inproceedings(/#2:booktitle), //#3:inproceedings(/#4:booktitle)) WHERE #2.content ~ #4.content SELECT #1,#3'
  $ toss client --socket $S4 --deadline-ms 5 join bib reviews "$J" > jreply.txt 2>&1
  [1]
  $ cat jreply.txt
  error deadline_exceeded: deadline exceeded during execution
  $ grep -c '<' jreply.txt
  0
  [1]
  $ toss client --socket $S4 shutdown
  {"stopping":true}

Clean shutdown of the main server:

  $ toss client --socket $S shutdown
  {"stopping":true}
  $ wait
  $ tail -1 serve.log
  toss serve: stopped
  $ grep -c listening serve.log
  1

Inserts were durable — one numbered file per document:

  $ ls $D/db/bib
  000000.xml
  000001.xml

  $ rm -rf $D
