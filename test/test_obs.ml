(* Tests for the observability layer: metrics-registry semantics, span
   nesting, and a golden test asserting that the executor's hot paths
   emit the expected metric series. *)

module Metrics = Toss_obs.Metrics
module Span = Toss_obs.Span
module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Collection = Toss_store.Collection
module Seo = Toss_core.Seo
module Executor = Toss_core.Executor
module Workload = Toss_data.Workload

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Counters                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  checki "accumulates" 5
    (Option.get (Metrics.find_counter (Metrics.snapshot ()) "test.counter"));
  Alcotest.check_raises "counters only go up"
    (Invalid_argument "Metrics.incr: counters only go up") (fun () ->
      Metrics.incr ~by:(-1) c)

let test_counter_identity () =
  Metrics.reset ();
  let a = Metrics.counter "test.same" in
  let b = Metrics.counter "test.same" in
  Metrics.incr a;
  Metrics.incr b;
  checki "same (name, labels) is one series" 2
    (Option.get (Metrics.find_counter (Metrics.snapshot ()) "test.same"))

let test_counter_labels () =
  Metrics.reset ();
  let x = Metrics.counter ~labels:[ ("k", "x") ] "test.labelled" in
  let y = Metrics.counter ~labels:[ ("k", "y") ] "test.labelled" in
  Metrics.incr x;
  Metrics.incr ~by:2 y;
  let snap = Metrics.snapshot () in
  checki "series x" 1
    (Option.get (Metrics.find_counter snap ~labels:[ ("k", "x") ] "test.labelled"));
  checki "series y" 2
    (Option.get (Metrics.find_counter snap ~labels:[ ("k", "y") ] "test.labelled"));
  checkb "unlabelled series distinct" true
    (Metrics.find_counter snap "test.labelled" = None)

let test_kind_conflict () =
  ignore (Metrics.counter "test.kind");
  checkb "re-registering a counter name as a gauge raises" true
    (match Metrics.gauge "test.kind" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_reset_keeps_handles () =
  let c = Metrics.counter "test.reset" in
  Metrics.incr ~by:7 c;
  Metrics.reset ();
  checki "zeroed" 0
    (Option.get (Metrics.find_counter (Metrics.snapshot ()) "test.reset"));
  Metrics.incr c;
  checki "handle still live" 1
    (Option.get (Metrics.find_counter (Metrics.snapshot ()) "test.reset"))

(* ------------------------------------------------------------------ *)
(* Histograms                                                           *)
(* ------------------------------------------------------------------ *)

let histo_stats name =
  let snap = Metrics.snapshot () in
  match
    List.find_map
      (function
        | n, _, Metrics.Histogram h when n = name -> Some h | _ -> None)
      snap
  with
  | Some h -> h
  | None -> Alcotest.failf "histogram %s not in snapshot" name

let test_histogram_summary () =
  Metrics.reset ();
  let h = Metrics.histogram "test.histo" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 100. ];
  let s = histo_stats "test.histo" in
  checki "count" 3 s.Metrics.count;
  checkf "sum" 102. s.Metrics.sum;
  checkf "min" 0.5 s.Metrics.min;
  checkf "max" 100. s.Metrics.max

let test_histogram_buckets () =
  Metrics.reset ();
  let h = Metrics.histogram "test.buckets" in
  List.iter (Metrics.observe_int h) [ 1; 5; 50; 5000 ];
  let s = histo_stats "test.buckets" in
  let cum bound =
    match List.assoc_opt bound s.Metrics.buckets with
    | Some c -> c
    | None -> Alcotest.failf "no bucket with bound %g" bound
  in
  (* Buckets are cumulative: le(1) sees only the 1, le(10) adds the 5,
     le(100) the 50, and +inf everything. *)
  checki "le 1" 1 (cum 1.);
  checki "le 10" 2 (cum 10.);
  checki "le 100" 3 (cum 100.);
  checki "le +inf = count" 4 (cum infinity)

let test_histogram_empty () =
  Metrics.reset ();
  ignore (Metrics.histogram "test.empty");
  let s = histo_stats "test.empty" in
  checki "count 0" 0 s.Metrics.count;
  checkb "min is nan" true (Float.is_nan s.Metrics.min)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_json_export () =
  Metrics.reset ();
  Metrics.incr ~by:3 (Metrics.counter "test.json.counter");
  Metrics.set (Metrics.gauge "test.json.gauge") 2.5;
  Metrics.observe (Metrics.histogram "test.json.histo") 1.0;
  let json = Metrics.to_json (Metrics.snapshot ()) in
  checkb "counter serialized" true
    (contains ~needle:"\"test.json.counter\":3" json);
  checkb "gauge serialized" true (contains ~needle:"\"test.json.gauge\":2.5" json);
  checkb "histogram count serialized" true (contains ~needle:"\"count\":1" json)

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  Span.set_enabled false;
  let v, root =
    Span.run "outer" (fun () ->
        let a = Span.with_ "first" (fun () -> 1) in
        let b = Span.with_ "second" (fun () -> Span.with_ "inner" (fun () -> 10)) in
        a + b)
  in
  checki "value passed through" 11 v;
  checks "root name" "outer" root.Span.name;
  Alcotest.(check (list string))
    "children in execution order" [ "first"; "second" ]
    (List.map (fun c -> c.Span.name) root.Span.children);
  let second = List.nth root.Span.children 1 in
  Alcotest.(check (list string))
    "grandchild" [ "inner" ]
    (List.map (fun c -> c.Span.name) second.Span.children);
  checkb "find reaches grandchild" true (Span.find root "inner" <> None);
  checkb "parent covers children" true
    (root.Span.elapsed_s
    >= List.fold_left (fun acc c -> acc +. c.Span.elapsed_s) 0. root.Span.children);
  checkb "self time non-negative" true (Span.self_s root >= 0.)

let test_span_exception_safety () =
  let fired = ref false in
  (try
     ignore
       (Span.with_ "failing" (fun () ->
            fired := true;
            failwith "boom"))
   with Failure _ -> ());
  checkb "body ran" true !fired;
  (* The stack must be balanced again: a fresh root works normally. *)
  let _, root = Span.run "after" (fun () -> ()) in
  checkb "no stale children leak in" true (root.Span.children = [])

let test_span_ring_buffer () =
  Span.set_enabled true;
  Span.clear_recent ();
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      ignore (Span.with_ "trace-1" (fun () -> ()));
      ignore (Span.with_ "trace-2" (fun () -> ()));
      Alcotest.(check (list string))
        "newest first"
        [ "trace-2"; "trace-1" ]
        (List.map (fun s -> s.Span.name) (Span.recent ()));
      checkb "alloc tracked when enabled" true
        (List.for_all (fun s -> s.Span.alloc_bytes >= 0.) (Span.recent ())));
  Span.clear_recent ();
  ignore (Span.with_ "untraced" (fun () -> ()));
  checkb "nothing recorded when disabled" true (Span.recent () = [])

let test_span_capacity () =
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.set_capacity 32)
    (fun () ->
      Span.set_capacity 2;
      List.iter
        (fun n -> ignore (Span.with_ n (fun () -> ())))
        [ "a"; "b"; "c" ];
      Alcotest.(check (list string))
        "oldest dropped" [ "c"; "b" ]
        (List.map (fun s -> s.Span.name) (Span.recent ())))

(* ------------------------------------------------------------------ *)
(* Golden test: the executor emits the expected series                  *)
(* ------------------------------------------------------------------ *)

let db =
  Toss_xml.Parser.parse_exn
    {|<dblp>
        <inproceedings key="u1">
          <author>Jeffrey D. Ullman</author>
          <title>Principles of Database Systems</title>
          <booktitle>PODS</booktitle><year>1998</year>
        </inproceedings>
        <inproceedings key="w1">
          <author>Jennifer Widom</author>
          <title>Active Database Systems</title>
          <booktitle>SIGMOD Conference</booktitle><year>1999</year>
        </inproceedings>
      </dblp>|}

let ullman_pattern =
  Pattern.v
    (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
    (Condition.conj
       [
         Condition.tag_eq 1 "inproceedings";
         Condition.tag_eq 2 "author";
         Condition.content_sim 2 "Jeffrey D. Ullman";
       ])

let expected_series =
  [
    "executor.candidates";
    "executor.embeddings";
    "executor.phase.seconds";
    "executor.results";
    "executor.select.total";
    "rewrite.fanout";
    "rewrite.label_queries";
    "rewrite.patterns";
    "store.eval.queries";
    "store.eval.results";
    "tax.embed.candidates_considered";
    "tax.embed.embeddings";
    "tax.embed.enumerations";
  ]

let test_executor_emits_metrics () =
  Metrics.reset ();
  let seo =
    match
      Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0
        [ Doc.of_tree db ]
    with
    | Ok seo -> seo
    | Error msg -> failwith msg
  in
  Metrics.reset ();
  let coll = Collection.create "golden" in
  ignore (Collection.add_document coll db);
  let results, stats = Executor.select seo coll ~pattern:ullman_pattern ~sl:[ 1 ] in
  checki "query finds the paper" 1 (List.length results);
  let snap = Metrics.snapshot () in
  let names = Metrics.names snap in
  List.iter
    (fun expected ->
      checkb (Printf.sprintf "series %s emitted" expected) true
        (List.mem expected names))
    expected_series;
  checki "one select" 1
    (Option.get (Metrics.find_counter snap "executor.select.total"));
  (* The sizes in the registry agree with the stats record. *)
  let histo_sum name =
    let h = histo_stats name in
    int_of_float h.Metrics.sum
  in
  checki "candidates agree" stats.Executor.n_candidates
    (histo_sum "executor.candidates");
  checki "results agree" stats.Executor.n_results (histo_sum "executor.results")

let test_stats_phases_are_trace_view () =
  let seo =
    match
      Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0
        [ Doc.of_tree db ]
    with
    | Ok seo -> seo
    | Error msg -> failwith msg
  in
  let coll = Collection.create "view" in
  ignore (Collection.add_document coll db);
  let _, stats = Executor.select seo coll ~pattern:ullman_pattern ~sl:[ 1 ] in
  let trace = stats.Executor.trace in
  checks "root span" "executor.select" trace.Span.name;
  let dur name =
    match Span.find trace name with
    | Some s -> s.Span.elapsed_s
    | None -> Alcotest.failf "phase span %s missing" name
  in
  checkf "rewrite agrees" stats.Executor.phases.Executor.rewrite_s (dur "rewrite");
  checkf "execute agrees" stats.Executor.phases.Executor.execute_s (dur "execute");
  checkf "assemble agrees" stats.Executor.phases.Executor.assemble_s (dur "assemble")

let () =
  Alcotest.run "toss_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "identity" `Quick test_counter_identity;
          Alcotest.test_case "labels" `Quick test_counter_labels;
          Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
          Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "summary" `Quick test_histogram_summary;
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "json export" `Quick test_json_export;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "ring buffer" `Quick test_span_ring_buffer;
          Alcotest.test_case "capacity" `Quick test_span_capacity;
        ] );
      ( "executor integration",
        [
          Alcotest.test_case "golden metric names" `Quick test_executor_emits_metrics;
          Alcotest.test_case "phases = trace view" `Quick test_stats_phases_are_trace_view;
        ] );
    ]
