(* Tests for the observability layer: metrics-registry semantics, span
   nesting, and a golden test asserting that the executor's hot paths
   emit the expected metric series. *)

module Metrics = Toss_obs.Metrics
module Span = Toss_obs.Span
module Event = Toss_obs.Event
module Trace = Toss_obs.Trace
module Json = Toss_eval.Json_lite
module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Collection = Toss_store.Collection
module Seo = Toss_core.Seo
module Executor = Toss_core.Executor
module Workload = Toss_data.Workload

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Counters                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  checki "accumulates" 5
    (Option.get (Metrics.find_counter (Metrics.snapshot ()) "test.counter"));
  Alcotest.check_raises "counters only go up"
    (Invalid_argument "Metrics.incr: counters only go up") (fun () ->
      Metrics.incr ~by:(-1) c)

let test_counter_identity () =
  Metrics.reset ();
  let a = Metrics.counter "test.same" in
  let b = Metrics.counter "test.same" in
  Metrics.incr a;
  Metrics.incr b;
  checki "same (name, labels) is one series" 2
    (Option.get (Metrics.find_counter (Metrics.snapshot ()) "test.same"))

let test_counter_labels () =
  Metrics.reset ();
  let x = Metrics.counter ~labels:[ ("k", "x") ] "test.labelled" in
  let y = Metrics.counter ~labels:[ ("k", "y") ] "test.labelled" in
  Metrics.incr x;
  Metrics.incr ~by:2 y;
  let snap = Metrics.snapshot () in
  checki "series x" 1
    (Option.get (Metrics.find_counter snap ~labels:[ ("k", "x") ] "test.labelled"));
  checki "series y" 2
    (Option.get (Metrics.find_counter snap ~labels:[ ("k", "y") ] "test.labelled"));
  checkb "unlabelled series distinct" true
    (Metrics.find_counter snap "test.labelled" = None)

let test_kind_conflict () =
  ignore (Metrics.counter "test.kind");
  checkb "re-registering a counter name as a gauge raises" true
    (match Metrics.gauge "test.kind" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_reset_keeps_handles () =
  let c = Metrics.counter "test.reset" in
  Metrics.incr ~by:7 c;
  Metrics.reset ();
  checki "zeroed" 0
    (Option.get (Metrics.find_counter (Metrics.snapshot ()) "test.reset"));
  Metrics.incr c;
  checki "handle still live" 1
    (Option.get (Metrics.find_counter (Metrics.snapshot ()) "test.reset"))

(* [reset] zeroes the registered cells in place, so handles obtained
   before a reset keep feeding the same series afterwards — for every
   instrument kind, not only counters. *)
let test_reset_keeps_gauge_handles () =
  Metrics.reset ();
  let g = Metrics.gauge "test.reset.gauge" in
  Metrics.set g 42.;
  Metrics.reset ();
  checkf "zeroed" 0.
    (Option.get (Metrics.find_gauge (Metrics.snapshot ()) "test.reset.gauge"));
  Metrics.set g 7.;
  checkf "stale handle still registers" 7.
    (Option.get (Metrics.find_gauge (Metrics.snapshot ()) "test.reset.gauge"))

let test_reset_keeps_histogram_handles () =
  Metrics.reset ();
  let h = Metrics.histogram "test.reset.histo" in
  Metrics.observe h 3.0;
  Metrics.reset ();
  let empty =
    Option.get (Metrics.find_histogram (Metrics.snapshot ()) "test.reset.histo")
  in
  checki "emptied" 0 empty.Metrics.count;
  Metrics.observe h 5.0;
  let refilled =
    Option.get (Metrics.find_histogram (Metrics.snapshot ()) "test.reset.histo")
  in
  checki "stale handle still observes" 1 refilled.Metrics.count;
  checkf "new observation only" 5.0 refilled.Metrics.sum

(* ------------------------------------------------------------------ *)
(* Histograms                                                           *)
(* ------------------------------------------------------------------ *)

let histo_stats name =
  let snap = Metrics.snapshot () in
  match
    List.find_map
      (function
        | n, _, Metrics.Histogram h when n = name -> Some h | _ -> None)
      snap
  with
  | Some h -> h
  | None -> Alcotest.failf "histogram %s not in snapshot" name

let test_histogram_summary () =
  Metrics.reset ();
  let h = Metrics.histogram "test.histo" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 100. ];
  let s = histo_stats "test.histo" in
  checki "count" 3 s.Metrics.count;
  checkf "sum" 102. s.Metrics.sum;
  checkf "min" 0.5 s.Metrics.min;
  checkf "max" 100. s.Metrics.max

let test_histogram_buckets () =
  Metrics.reset ();
  let h = Metrics.histogram "test.buckets" in
  List.iter (Metrics.observe_int h) [ 1; 5; 50; 5000 ];
  let s = histo_stats "test.buckets" in
  let cum bound =
    match List.assoc_opt bound s.Metrics.buckets with
    | Some c -> c
    | None -> Alcotest.failf "no bucket with bound %g" bound
  in
  (* Buckets are cumulative: le(1) sees only the 1, le(10) adds the 5,
     le(100) the 50, and +inf everything. *)
  checki "le 1" 1 (cum 1.);
  checki "le 10" 2 (cum 10.);
  checki "le 100" 3 (cum 100.);
  checki "le +inf = count" 4 (cum infinity)

(* Four domains hammering the same counter, gauge and histogram —
   through handles re-registered per domain, so the registry lock is
   exercised too. Exact totals: a single lost update fails the test
   (and did, when counters were plain mutable ints). *)
let test_multidomain_hammer () =
  Metrics.reset ();
  let n_domains = 4 and per_domain = 25_000 in
  let work () =
    let c = Metrics.counter "hammer.count" in
    let g = Metrics.gauge "hammer.gauge" in
    let h = Metrics.histogram "hammer.histo" in
    for i = 1 to per_domain do
      Metrics.incr c;
      Metrics.set g 1.;
      Metrics.observe_int h (i mod 7)
    done
  in
  let domains = List.init n_domains (fun _ -> Domain.spawn work) in
  (* Snapshots taken mid-storm must not crash or tear a histogram. *)
  for _ = 1 to 50 do
    ignore (Metrics.snapshot ())
  done;
  List.iter Domain.join domains;
  let snap = Metrics.snapshot () in
  checki "no counter increment lost" (n_domains * per_domain)
    (Option.get (Metrics.find_counter snap "hammer.count"));
  let s = histo_stats "hammer.histo" in
  checki "no observation lost" (n_domains * per_domain) s.Metrics.count;
  checkf "histogram max" 6. s.Metrics.max

let test_histogram_empty () =
  Metrics.reset ();
  ignore (Metrics.histogram "test.empty");
  let s = histo_stats "test.empty" in
  checki "count 0" 0 s.Metrics.count;
  checkb "min is nan" true (Float.is_nan s.Metrics.min)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_json_export () =
  Metrics.reset ();
  Metrics.incr ~by:3 (Metrics.counter "test.json.counter");
  Metrics.set (Metrics.gauge "test.json.gauge") 2.5;
  Metrics.observe (Metrics.histogram "test.json.histo") 1.0;
  let json = Metrics.to_json (Metrics.snapshot ()) in
  checkb "counter serialized" true
    (contains ~needle:"\"test.json.counter\":3" json);
  checkb "gauge serialized" true (contains ~needle:"\"test.json.gauge\":2.5" json);
  checkb "histogram count serialized" true (contains ~needle:"\"count\":1" json)

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  Span.set_enabled false;
  let v, root =
    Span.run "outer" (fun () ->
        let a = Span.with_ "first" (fun () -> 1) in
        let b = Span.with_ "second" (fun () -> Span.with_ "inner" (fun () -> 10)) in
        a + b)
  in
  checki "value passed through" 11 v;
  checks "root name" "outer" root.Span.name;
  Alcotest.(check (list string))
    "children in execution order" [ "first"; "second" ]
    (List.map (fun c -> c.Span.name) root.Span.children);
  let second = List.nth root.Span.children 1 in
  Alcotest.(check (list string))
    "grandchild" [ "inner" ]
    (List.map (fun c -> c.Span.name) second.Span.children);
  checkb "find reaches grandchild" true (Span.find root "inner" <> None);
  checkb "parent covers children" true
    (root.Span.elapsed_s
    >= List.fold_left (fun acc c -> acc +. c.Span.elapsed_s) 0. root.Span.children);
  checkb "self time non-negative" true (Span.self_s root >= 0.)

let test_span_exception_safety () =
  let fired = ref false in
  (try
     ignore
       (Span.with_ "failing" (fun () ->
            fired := true;
            failwith "boom"))
   with Failure _ -> ());
  checkb "body ran" true !fired;
  (* The stack must be balanced again: a fresh root works normally. *)
  let _, root = Span.run "after" (fun () -> ()) in
  checkb "no stale children leak in" true (root.Span.children = [])

let test_span_ring_buffer () =
  Span.set_enabled true;
  Span.clear_recent ();
  Fun.protect
    ~finally:(fun () -> Span.set_enabled false)
    (fun () ->
      ignore (Span.with_ "trace-1" (fun () -> ()));
      ignore (Span.with_ "trace-2" (fun () -> ()));
      Alcotest.(check (list string))
        "newest first"
        [ "trace-2"; "trace-1" ]
        (List.map (fun s -> s.Span.name) (Span.recent ()));
      checkb "alloc tracked when enabled" true
        (List.for_all (fun s -> s.Span.alloc_bytes >= 0.) (Span.recent ())));
  Span.clear_recent ();
  ignore (Span.with_ "untraced" (fun () -> ()));
  checkb "nothing recorded when disabled" true (Span.recent () = [])

let test_span_capacity () =
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.set_capacity 32)
    (fun () ->
      Span.set_capacity 2;
      List.iter
        (fun n -> ignore (Span.with_ n (fun () -> ())))
        [ "a"; "b"; "c" ];
      Alcotest.(check (list string))
        "oldest dropped" [ "c"; "b" ]
        (List.map (fun s -> s.Span.name) (Span.recent ())))

(* ------------------------------------------------------------------ *)
(* Quantile estimates                                                   *)
(* ------------------------------------------------------------------ *)

let test_quantile_point_mass () =
  Metrics.reset ();
  let h = Metrics.histogram "test.q.point" in
  List.iter (fun _ -> Metrics.observe h 0.25) [ 1; 2; 3; 4; 5 ];
  let s = histo_stats "test.q.point" in
  (* All observations equal: every quantile collapses to that value. *)
  List.iter
    (fun q -> checkf (Printf.sprintf "q=%g exact" q) 0.25 (Metrics.quantile s q))
    [ 0.; 0.5; 0.95; 0.99; 1. ]

let test_quantile_monotone_and_bounded () =
  Metrics.reset ();
  let h = Metrics.histogram "test.q.spread" in
  List.iter (Metrics.observe h) [ 0.002; 0.004; 0.03; 0.07; 0.5; 2.0 ];
  let s = histo_stats "test.q.spread" in
  let p50 = Metrics.quantile s 0.5 in
  let p95 = Metrics.quantile s 0.95 in
  let p99 = Metrics.quantile s 0.99 in
  checkb "p50 <= p95" true (p50 <= p95);
  checkb "p95 <= p99" true (p95 <= p99);
  checkb "within observed range" true (p50 >= s.Metrics.min && p99 <= s.Metrics.max);
  checkb "empty histogram is nan" true
    (Float.is_nan
       (Metrics.quantile
          { Metrics.count = 0; sum = 0.; min = nan; max = nan; buckets = [] }
          0.5))

let test_quantile_single_observation () =
  Metrics.reset ();
  let h = Metrics.histogram "test.q.single" in
  Metrics.observe h 3.0;
  let s = histo_stats "test.q.single" in
  (* One observation: min = max = 3, so interpolation has no room and
     every quantile is the observation itself. *)
  List.iter
    (fun q -> checkf (Printf.sprintf "q=%g is the observation" q) 3.0 (Metrics.quantile s q))
    [ 0.; 0.25; 0.5; 1. ]

let test_quantile_decade_boundary () =
  Metrics.reset ();
  let h = Metrics.histogram "test.q.decade" in
  (* Observations sitting exactly on the decade bounds the registry
     buckets by: each must land in its own le-bucket, and quantiles must
     stay inside [min, max] rather than drifting to a bucket edge below
     the minimum (the clamp regression this guards). *)
  List.iter (Metrics.observe h) [ 10.0; 100.0 ];
  let s = histo_stats "test.q.decade" in
  let cum bound =
    match List.assoc_opt bound s.Metrics.buckets with
    | Some c -> c
    | None -> Alcotest.failf "no bucket with bound %g" bound
  in
  checki "10 counted at le=10" 1 (cum 10.);
  checki "100 counted at le=100" 2 (cum 100.);
  let p50 = Metrics.quantile s 0.5 in
  let p99 = Metrics.quantile s 0.99 in
  checkb "p50 within range" true (p50 >= 10.0 && p50 <= 100.0);
  checkb "p99 within range" true (p99 >= 10.0 && p99 <= 100.0);
  checkb "quantiles monotone" true (p50 <= p99)

let test_quantile_clamps_q () =
  Metrics.reset ();
  let h = Metrics.histogram "test.q.clamp" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 4.0 ];
  let s = histo_stats "test.q.clamp" in
  (* Out-of-range ranks clamp to the ends instead of extrapolating. *)
  checkf "q below 0 = q 0" (Metrics.quantile s 0.) (Metrics.quantile s (-0.5));
  checkf "q above 1 = q 1" (Metrics.quantile s 1.) (Metrics.quantile s 1.5);
  checkb "q=0 at or above min" true (Metrics.quantile s 0. >= s.Metrics.min);
  checkf "q=1 is the max" s.Metrics.max (Metrics.quantile s 1.)

let test_quantiles_in_exports () =
  Metrics.reset ();
  let h = Metrics.histogram "test.q.export" in
  Metrics.observe h 1.0;
  let snap = Metrics.snapshot () in
  checkb "table shows percentiles" true
    (contains ~needle:"p95=" (Metrics.to_table snap));
  checkb "json shows percentiles" true
    (contains ~needle:"\"p95\":" (Metrics.to_json snap))

(* ------------------------------------------------------------------ *)
(* Event log                                                            *)
(* ------------------------------------------------------------------ *)

(* A tiny two-paper fixture; one pattern whose TOSS run exercises the
   whole rewrite -> execute -> assemble pipeline. Shared with the golden
   metrics tests below. *)
let db =
  Toss_xml.Parser.parse_exn
    {|<dblp>
        <inproceedings key="u1">
          <author>Jeffrey D. Ullman</author>
          <title>Principles of Database Systems</title>
          <booktitle>PODS</booktitle><year>1998</year>
        </inproceedings>
        <inproceedings key="w1">
          <author>Jennifer Widom</author>
          <title>Active Database Systems</title>
          <booktitle>SIGMOD Conference</booktitle><year>1999</year>
        </inproceedings>
      </dblp>|}

let ullman_pattern =
  Pattern.v
    (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
    (Condition.conj
       [
         Condition.tag_eq 1 "inproceedings";
         Condition.tag_eq 2 "author";
         Condition.content_sim 2 "Jeffrey D. Ullman";
       ])

let with_sink sink f =
  Event.clear_sinks ();
  Event.install sink;
  Fun.protect ~finally:Event.clear_sinks f

let test_event_inactive_by_default () =
  Event.clear_sinks ();
  checkb "no sinks -> inactive" true (not (Event.active ()));
  Event.emit ~payload:[ ("k", Event.Int 1) ] Event.Query_start;
  with_sink Event.null (fun () ->
      checkb "null sink keeps active true" true (Event.active ()))

let test_event_ordering () =
  let sink = Event.memory () in
  with_sink sink (fun () ->
      Event.emit Event.Query_start;
      Event.emit Event.Rewrite_done;
      Event.emit (Event.Custom "checkpoint");
      Event.emit Event.Query_end);
  let evs = Event.events sink in
  Alcotest.(check (list string))
    "kinds in emission order"
    [ "query_start"; "rewrite_done"; "checkpoint"; "query_end" ]
    (List.map (fun (e : Event.t) -> Event.kind_name e.Event.kind) evs);
  let rec pairwise = function
    | a :: (b :: _ as rest) -> ((a, b) :: pairwise rest)
    | _ -> []
  in
  List.iter
    (fun ((a : Event.t), (b : Event.t)) ->
      checkb "seq strictly increasing" true (a.Event.seq < b.Event.seq);
      checkb "ts non-decreasing" true (a.Event.ts_s <= b.Event.ts_s))
    (pairwise evs)

let test_event_ring_capacity () =
  let sink = Event.memory ~capacity:3 () in
  with_sink sink (fun () ->
      List.iter
        (fun i -> Event.emit ~payload:[ ("i", Event.Int i) ] (Event.Custom "tick"))
        [ 1; 2; 3; 4; 5 ]);
  let kept =
    List.map (fun e -> Option.get (Event.payload_int e "i")) (Event.events sink)
  in
  Alcotest.(check (list int)) "last capacity events, oldest first" [ 3; 4; 5 ] kept

let test_event_jsonl_escaping () =
  let lines = ref [] in
  let sink = Event.jsonl (fun line -> lines := line :: !lines) in
  with_sink sink (fun () ->
      Event.emit
        ~payload:
          [
            ("text", Event.Str "say \"hi\"\nline2\ttab\\slash");
            ("n", Event.Int 3);
            ("f", Event.Float 0.5);
            ("b", Event.Bool true);
          ]
        (Event.Custom "escape/test"));
  match !lines with
  | [ line ] -> (
      match Json.parse line with
      | Error msg -> Alcotest.failf "emitted line is not valid JSON: %s (%s)" msg line
      | Ok json ->
          checks "kind survives" "escape/test"
            (Option.get (Option.bind (Json.member "kind" json) Json.to_str));
          let payload = Option.get (Json.member "payload" json) in
          checks "string round-trips through escapes" "say \"hi\"\nline2\ttab\\slash"
            (Option.get (Option.bind (Json.member "text" payload) Json.to_str));
          checkf "int" 3.
            (Option.get (Option.bind (Json.member "n" payload) Json.to_num));
          checkb "bool" true
            (Option.get (Option.bind (Json.member "b" payload) Json.to_bool)))
  | lines -> Alcotest.failf "expected exactly one line, got %d" (List.length lines)

let run_query_with_events ?(compile = true) () =
  let seo =
    match
      Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0
        [ Doc.of_tree db ]
    with
    | Ok seo -> seo
    | Error msg -> failwith msg
  in
  let coll = Collection.create "events" in
  ignore (Collection.add_document coll db);
  let coll = Collection.snapshot coll in
  Executor.select ~compile seo coll ~pattern:ullman_pattern ~sl:[ 1 ]

let test_slow_query_threshold () =
  let captured = ref [] in
  let keep line = captured := line :: !captured in
  (* Far above any realistic runtime: nothing may be logged. *)
  with_sink (Event.slow_query ~threshold_s:3600. ~write:keep) (fun () ->
      ignore (run_query_with_events ()));
  checki "fast query not logged" 0 (List.length !captured);
  (* Threshold zero: every query logs exactly one record. *)
  with_sink (Event.slow_query ~threshold_s:0. ~write:keep) (fun () ->
      ignore (run_query_with_events ()));
  checki "slow query logged once" 1 (List.length !captured)

(* The slow-query record must be replayable: parse it back and walk the
   captured event stream. *)
let test_slow_query_record_replays () =
  let captured = ref [] in
  with_sink
    (Event.slow_query ~threshold_s:0. ~write:(fun l -> captured := l :: !captured))
    (fun () -> ignore (run_query_with_events ~compile:false ()));
  match !captured with
  | [ line ] -> (
      match Json.parse line with
      | Error msg -> Alcotest.failf "slow record is not valid JSON: %s" msg
      | Ok json ->
          checks "record type" "slow_query"
            (Option.get (Option.bind (Json.member "type" json) Json.to_str));
          checks "op" "select"
            (Option.get (Option.bind (Json.member "op" json) Json.to_str));
          let events =
            Option.get (Option.bind (Json.member "events" json) Json.to_list)
          in
          checki "n_events agrees" (List.length events)
            (int_of_float
               (Option.get (Option.bind (Json.member "n_events" json) Json.to_num)));
          let kinds =
            List.map
              (fun e -> Option.get (Option.bind (Json.member "kind" e) Json.to_str))
              events
          in
          checks "stream starts the query" "query_start" (List.hd kinds);
          checks "stream ends the query" "query_end"
            (List.nth kinds (List.length kinds - 1));
          checkb "rewrite precedes xpath" true
            (List.mem "rewrite_done" kinds && List.mem "xpath_exec" kinds);
          let last = List.nth events (List.length events - 1) in
          checkb "query_end carries the span tree" true
            (Json.member "trace" last <> None))
  | lines -> Alcotest.failf "expected one slow record, got %d" (List.length lines)

(* The executor's event stream itself: a select emits the expected kinds
   in pipeline order, and the xpath_exec row counts sum to the stats
   record's candidate count. *)
let test_executor_event_stream () =
  let sink = Event.memory () in
  let _, stats = with_sink sink (fun () -> run_query_with_events ~compile:false ()) in
  let evs = Event.events sink in
  let kinds = List.map (fun (e : Event.t) -> Event.kind_name e.Event.kind) evs in
  Alcotest.(check (list string))
    "pipeline order"
    [ "query_start"; "rewrite_done"; "xpath_exec"; "xpath_exec"; "embed_done";
      "query_end" ]
    kinds;
  let rows =
    List.fold_left
      (fun acc (e : Event.t) ->
        match e.Event.kind with
        | Event.Xpath_exec -> acc + Option.get (Event.payload_int e "rows")
        | _ -> acc)
      0 evs
  in
  checki "xpath rows sum to candidates" stats.Executor.n_candidates rows;
  let last = List.nth evs (List.length evs - 1) in
  checkb "query_end carries the trace" true (last.Event.trace <> None);
  checki "results in payload" stats.Executor.n_results
    (Option.get (Event.payload_int last "results"))

(* The compiled matcher (the default) issues no store queries, so its
   stream has no xpath_exec events: one embed_done per document, with the
   match counts in the payload. *)
let test_compiled_event_stream () =
  let sink = Event.memory () in
  let _, stats = with_sink sink (fun () -> run_query_with_events ()) in
  let evs = Event.events sink in
  let kinds = List.map (fun (e : Event.t) -> Event.kind_name e.Event.kind) evs in
  Alcotest.(check (list string))
    "compiled pipeline order"
    [ "query_start"; "rewrite_done"; "embed_done"; "query_end" ]
    kinds;
  let embed =
    List.find (fun (e : Event.t) -> e.Event.kind = Event.Embed_done) evs
  in
  checki "embeddings in payload" stats.Executor.n_embeddings
    (Option.get (Event.payload_int embed "embeddings"));
  checki "nodes visited recorded" stats.Executor.n_candidates
    (Option.get (Event.payload_int embed "nodes"))

(* ------------------------------------------------------------------ *)
(* Trace context                                                        *)
(* ------------------------------------------------------------------ *)

let test_trace_scoping () =
  checkb "empty outside with_id" true (Trace.get () = None);
  let inner =
    Trace.with_id "outer" (fun () ->
        let nested = Trace.with_id "inner" (fun () -> Trace.get ()) in
        checkb "innermost wins" true (nested = Some "inner");
        Trace.get ())
  in
  checkb "outer restored after nesting" true (inner = Some "outer");
  (try Trace.with_id "doomed" (fun () -> failwith "boom") with Failure _ -> ());
  checkb "restored on exception" true (Trace.get () = None)

let test_trace_generate () =
  let ids = List.init 100 (fun _ -> Trace.generate ()) in
  checki "all distinct" 100 (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      checki "16 hex digits" 16 (String.length id);
      checkb "valid on the wire" true (Trace.is_valid id);
      checkb "hex charset" true
        (String.for_all
           (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
           id))
    ids

let test_trace_validation () =
  checkb "empty rejected" true (not (Trace.is_valid ""));
  checkb "single char ok" true (Trace.is_valid "a");
  checkb "128 chars ok" true (Trace.is_valid (String.make 128 'x'));
  checkb "129 chars rejected" true (not (Trace.is_valid (String.make 129 'x')));
  checkb "space rejected" true (not (Trace.is_valid "a b"));
  checkb "newline rejected" true (not (Trace.is_valid "a\nb"));
  checkb "non-ascii rejected" true (not (Trace.is_valid "caf\xc3\xa9"));
  checkb "punctuation ok" true (Trace.is_valid "req/42:retry-1_x.y~")

let test_trace_stamps_events_and_spans () =
  let sink = Event.memory () in
  with_sink sink (fun () ->
      Event.emit (Event.Custom "outside");
      Trace.with_id "stamp-1" (fun () -> Event.emit (Event.Custom "inside")));
  (match Event.events sink with
  | [ outside; inside ] ->
      checkb "no id outside" true (outside.Event.trace_id = None);
      checkb "stamped inside" true (inside.Event.trace_id = Some "stamp-1");
      checkb "stamp survives serialization" true
        (contains ~needle:"\"trace_id\":\"stamp-1\"" (Event.to_json inside))
  | evs -> Alcotest.failf "expected two events, got %d" (List.length evs));
  let _, root =
    Trace.with_id "stamp-2" (fun () ->
        Span.run "traced" (fun () -> ignore (Span.with_ "child" (fun () -> ()))))
  in
  checkb "root span stamped" true
    (List.assoc_opt "trace_id" root.Span.meta = Some "stamp-2");
  (match root.Span.children with
  | [ child ] ->
      checkb "child span stamped" true
        (List.assoc_opt "trace_id" child.Span.meta = Some "stamp-2")
  | _ -> Alcotest.fail "expected one child span");
  let _, untraced = Span.run "untraced" (fun () -> ()) in
  checkb "no stamp without a trace" true
    (List.assoc_opt "trace_id" untraced.Span.meta = None)

(* ------------------------------------------------------------------ *)
(* Per-trace slow-query capture                                         *)
(* ------------------------------------------------------------------ *)

let record_of line =
  match Json.parse line with
  | Error msg -> Alcotest.failf "slow record is not valid JSON: %s" msg
  | Ok json -> json

let record_trace_id json =
  Option.bind (Json.member "trace_id" json) Json.to_str

let record_event_ids json =
  Option.get (Option.bind (Json.member "events" json) Json.to_list)
  |> List.map (fun e -> Option.bind (Json.member "trace_id" e) Json.to_str)

(* Two requests interleave their event streams — exactly what happens
   when two pool domains execute concurrently. The sink must
   demultiplex on trace id: one record per request, each holding only
   its own events. *)
let test_slow_sink_demultiplexes () =
  let captured = ref [] in
  with_sink
    (Event.slow_query ~threshold_s:0. ~write:(fun l -> captured := l :: !captured))
    (fun () ->
      let under id kind = Trace.with_id id (fun () -> Event.emit kind) in
      under "req-a" Event.Query_start;
      under "req-b" Event.Query_start;
      under "req-a" (Event.Custom "a-work");
      under "req-b" (Event.Custom "b-work");
      under "req-b" Event.Query_end;
      under "req-a" (Event.Custom "a-more");
      under "req-a" Event.Query_end);
  match List.rev_map record_of !captured with
  | [ first; second ] ->
      checkb "b finished first" true (record_trace_id first = Some "req-b");
      checkb "a finished second" true (record_trace_id second = Some "req-a");
      Alcotest.(check (list int))
        "each record holds only its own events" [ 3; 4 ]
        (List.map (fun r -> List.length (record_event_ids r)) [ first; second ]);
      List.iter
        (fun r ->
          let id = record_trace_id r in
          List.iter
            (fun ev_id -> checkb "event id matches record id" true (ev_id = id))
            (record_event_ids r))
        [ first; second ]
  | records -> Alcotest.failf "expected two records, got %d" (List.length records)

(* Untraced emission (the CLI path) still works through the legacy
   single-stream buffer, without needing a trace id. *)
let test_slow_sink_untraced_still_works () =
  let captured = ref [] in
  with_sink
    (Event.slow_query ~threshold_s:0. ~write:(fun l -> captured := l :: !captured))
    (fun () ->
      Event.emit Event.Query_start;
      Event.emit (Event.Custom "work");
      Event.emit Event.Query_end);
  match List.map record_of !captured with
  | [ record ] ->
      checkb "no trace id on an untraced record" true (record_trace_id record = None);
      checki "all events captured" 3 (List.length (record_event_ids record))
  | records -> Alcotest.failf "expected one record, got %d" (List.length records)

(* A request that dies between Query_start and Query_end (deadline
   abort, exception) must not leak its buffered stream: the server
   calls drop_trace from the job's cleanup. *)
let test_slow_sink_drop_trace () =
  let captured = ref [] in
  with_sink
    (Event.slow_query ~threshold_s:0. ~write:(fun l -> captured := l :: !captured))
    (fun () ->
      Trace.with_id "doomed" (fun () ->
          Event.emit Event.Query_start;
          Event.emit (Event.Custom "partial"));
      Event.drop_trace "doomed";
      (* A late event (or end) for the dropped id is ignored, not
         resurrected as a fresh stream. *)
      Trace.with_id "doomed" (fun () -> Event.emit Event.Query_end);
      (* An unrelated request is unaffected. *)
      Trace.with_id "alive" (fun () ->
          Event.emit Event.Query_start;
          Event.emit Event.Query_end));
  match List.map record_of !captured with
  | [ record ] -> checkb "only the live request flushed" true (record_trace_id record = Some "alive")
  | records -> Alcotest.failf "expected one record, got %d" (List.length records)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                                *)
(* ------------------------------------------------------------------ *)

(* A hand-written parser for the text format, strict about what the
   to_prometheus contract promises: legal metric names, one # TYPE per
   name, and re-parseable sample values. *)
type prom_sample = { p_name : string; p_labels : (string * string) list; p_value : float }

let parse_prom_value s =
  match s with
  | "+Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> nan
  | s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> Alcotest.failf "unparseable sample value %S" s)

let legal_name s =
  s <> ""
  && (not (s.[0] >= '0' && s.[0] <= '9'))
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       s

let parse_prom_labels s =
  (* Comma-separated key=quoted-value pairs; the values these tests
     generate contain no escapes or commas, so a comma split suffices. *)
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun kv ->
           match String.index_opt kv '=' with
           | None -> Alcotest.failf "label without '=': %S" kv
           | Some i ->
               let k = String.sub kv 0 i in
               let v = String.sub kv (i + 1) (String.length kv - i - 1) in
               let n = String.length v in
               if n < 2 || v.[0] <> '"' || v.[n - 1] <> '"' then
                 Alcotest.failf "unquoted label value: %S" kv
               else (k, String.sub v 1 (n - 2)))

let parse_prom_line line =
  if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
    match String.split_on_char ' ' line with
    | [ _; _; name; kind ] ->
        checkb ("legal TYPE name " ^ name) true (legal_name name);
        checkb ("known kind " ^ kind) true
          (List.mem kind [ "counter"; "gauge"; "histogram" ]);
        `Type (name, kind)
    | _ -> Alcotest.failf "malformed TYPE line: %S" line
  end
  else
    match String.rindex_opt line ' ' with
    | None -> Alcotest.failf "malformed sample line: %S" line
    | Some sp ->
        let head = String.sub line 0 sp in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        let name, labels =
          match String.index_opt head '{' with
          | None -> (head, [])
          | Some ob ->
              let n = String.length head in
              if head.[n - 1] <> '}' then
                Alcotest.failf "unterminated label set: %S" line
              else
                ( String.sub head 0 ob,
                  parse_prom_labels (String.sub head (ob + 1) (n - ob - 2)) )
        in
        checkb ("legal sample name " ^ name) true (legal_name name);
        `Sample { p_name = name; p_labels = labels; p_value = parse_prom_value value }

let parse_prom text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "")
  |> List.map parse_prom_line

let test_prometheus_exposition () =
  Metrics.reset ();
  Metrics.incr ~by:3 (Metrics.counter "prom.test.counter");
  Metrics.incr ~by:2 (Metrics.counter ~labels:[ ("op", "query") ] "prom.test.labelled");
  Metrics.incr ~by:5 (Metrics.counter ~labels:[ ("op", "insert") ] "prom.test.labelled");
  Metrics.set (Metrics.gauge "prom.test.gauge") 2.5;
  let h = Metrics.histogram "prom.test.histo" in
  List.iter (Metrics.observe h) [ 0.005; 0.05; 3.0 ];
  let lines = parse_prom (Metrics.to_prometheus (Metrics.snapshot ())) in
  (* One # TYPE per exposition name, and it precedes that name's samples. *)
  let seen_types = Hashtbl.create 8 in
  List.iter
    (function
      | `Type (name, kind) ->
          checkb ("single TYPE for " ^ name) true (not (Hashtbl.mem seen_types name));
          Hashtbl.replace seen_types name kind
      | `Sample s ->
          let base =
            List.fold_left
              (fun acc suffix ->
                let n = String.length acc and m = String.length suffix in
                if n > m && String.sub acc (n - m) m = suffix then
                  String.sub acc 0 (n - m)
                else acc)
              s.p_name [ "_bucket"; "_sum"; "_count" ]
          in
          checkb ("TYPE precedes samples of " ^ s.p_name) true
            (Hashtbl.mem seen_types s.p_name || Hashtbl.mem seen_types base))
    lines;
  let samples =
    List.filter_map (function `Sample s -> Some s | `Type _ -> None) lines
  in
  let find ?(labels = []) name =
    match
      List.find_opt (fun s -> s.p_name = name && s.p_labels = labels) samples
    with
    | Some s -> s.p_value
    | None -> Alcotest.failf "no sample %s%s" name (String.concat "," (List.map fst labels))
  in
  (* Round-trip: the registry's values survive exposition and re-parse. *)
  checkf "counter value" 3. (find "prom_test_counter");
  checkf "labelled series query" 2.
    (find ~labels:[ ("op", "query") ] "prom_test_labelled");
  checkf "labelled series insert" 5.
    (find ~labels:[ ("op", "insert") ] "prom_test_labelled");
  checkf "gauge value" 2.5 (find "prom_test_gauge");
  checkf "histogram count" 3. (find "prom_test_histo_count");
  checkf "histogram sum" 3.055 (find "prom_test_histo_sum");
  (* Buckets are cumulative, non-decreasing, and end at le="+Inf" with
     the total count. *)
  let buckets =
    List.filter (fun s -> s.p_name = "prom_test_histo_bucket") samples
    |> List.map (fun s ->
           (parse_prom_value (List.assoc "le" s.p_labels), s.p_value))
  in
  checkb "has buckets" true (buckets <> []);
  let bounds = List.map fst buckets in
  checkb "le bounds ascend" true (List.sort compare bounds = bounds);
  let counts = List.map snd buckets in
  checkb "cumulative counts non-decreasing" true
    (List.sort compare counts = counts);
  let inf_bound, inf_count = List.nth buckets (List.length buckets - 1) in
  checkb "last bucket is +Inf" true (inf_bound = infinity);
  checkf "+Inf bucket equals count" 3. inf_count

let test_prometheus_sanitizes () =
  Metrics.reset ();
  Metrics.incr (Metrics.counter "server.cache.hits");
  let text = Metrics.to_prometheus (Metrics.snapshot ()) in
  checkb "dots become underscores" true
    (contains ~needle:"server_cache_hits 1" text);
  checkb "no dotted name survives" true (not (contains ~needle:"server.cache" text));
  List.iter (fun l -> ignore (parse_prom_line l)) (String.split_on_char '\n' text |> List.filter (fun l -> l <> ""))

(* ------------------------------------------------------------------ *)
(* Golden test: the executor emits the expected series                  *)
(* ------------------------------------------------------------------ *)

let expected_series =
  [
    "executor.candidates";
    "executor.embeddings";
    "executor.phase.seconds";
    "executor.results";
    "executor.select.total";
    "rewrite.fanout";
    "rewrite.label_queries";
    "rewrite.patterns";
    "store.eval.queries";
    "store.eval.results";
    "tax.embed.candidates_considered";
    "tax.embed.embeddings";
    "tax.embed.enumerations";
  ]

(* Series the compiled (default) matcher emits on top of the above. *)
let expected_compiled_series =
  [
    "compile.matchers";
    "compile.matches";
    "compile.nodes.visited";
    "planner.plans.compiled";
  ]

let test_executor_emits_metrics () =
  Metrics.reset ();
  let seo =
    match
      Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0
        [ Doc.of_tree db ]
    with
    | Ok seo -> seo
    | Error msg -> failwith msg
  in
  Metrics.reset ();
  let coll = Collection.create "golden" in
  ignore (Collection.add_document coll db);
  let coll = Collection.snapshot coll in
  let results, stats =
    Executor.select ~compile:false seo coll ~pattern:ullman_pattern ~sl:[ 1 ]
  in
  checki "query finds the paper" 1 (List.length results);
  let snap = Metrics.snapshot () in
  let names = Metrics.names snap in
  List.iter
    (fun expected ->
      checkb (Printf.sprintf "series %s emitted" expected) true
        (List.mem expected names))
    expected_series;
  checki "one select" 1
    (Option.get (Metrics.find_counter snap "executor.select.total"));
  (* The sizes in the registry agree with the stats record. *)
  let histo_sum name =
    let h = histo_stats name in
    int_of_float h.Metrics.sum
  in
  checki "candidates agree" stats.Executor.n_candidates
    (histo_sum "executor.candidates");
  checki "results agree" stats.Executor.n_results (histo_sum "executor.results");
  (* A compiled run adds the matcher series. *)
  let _, _ = Executor.select seo coll ~pattern:ullman_pattern ~sl:[ 1 ] in
  let snap = Metrics.snapshot () in
  let names = Metrics.names snap in
  List.iter
    (fun expected ->
      checkb (Printf.sprintf "series %s emitted" expected) true
        (List.mem expected names))
    expected_compiled_series;
  checki "one matcher built" 1
    (Option.get (Metrics.find_counter snap "compile.matchers"))

let test_stats_phases_are_trace_view () =
  let seo =
    match
      Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0
        [ Doc.of_tree db ]
    with
    | Ok seo -> seo
    | Error msg -> failwith msg
  in
  let coll = Collection.create "view" in
  ignore (Collection.add_document coll db);
  let coll = Collection.snapshot coll in
  let _, stats = Executor.select seo coll ~pattern:ullman_pattern ~sl:[ 1 ] in
  let trace = stats.Executor.trace in
  checks "root span" "executor.select" trace.Span.name;
  let dur name =
    match Span.find trace name with
    | Some s -> s.Span.elapsed_s
    | None -> Alcotest.failf "phase span %s missing" name
  in
  checkf "rewrite agrees" stats.Executor.phases.Executor.rewrite_s (dur "rewrite");
  checkf "execute agrees" stats.Executor.phases.Executor.execute_s (dur "execute");
  checkf "assemble agrees" stats.Executor.phases.Executor.assemble_s (dur "assemble")

let () =
  Alcotest.run "toss_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "identity" `Quick test_counter_identity;
          Alcotest.test_case "labels" `Quick test_counter_labels;
          Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
          Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
          Alcotest.test_case "reset keeps gauge handles" `Quick
            test_reset_keeps_gauge_handles;
          Alcotest.test_case "reset keeps histogram handles" `Quick
            test_reset_keeps_histogram_handles;
          Alcotest.test_case "multi-domain hammer" `Quick test_multidomain_hammer;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "summary" `Quick test_histogram_summary;
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "json export" `Quick test_json_export;
          Alcotest.test_case "quantile point mass" `Quick test_quantile_point_mass;
          Alcotest.test_case "quantile monotone" `Quick
            test_quantile_monotone_and_bounded;
          Alcotest.test_case "quantile single observation" `Quick
            test_quantile_single_observation;
          Alcotest.test_case "quantile decade boundary" `Quick
            test_quantile_decade_boundary;
          Alcotest.test_case "quantile clamps q" `Quick test_quantile_clamps_q;
          Alcotest.test_case "quantiles exported" `Quick test_quantiles_in_exports;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "exposition round-trip" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "name sanitization" `Quick test_prometheus_sanitizes;
        ] );
      ( "trace",
        [
          Alcotest.test_case "scoping" `Quick test_trace_scoping;
          Alcotest.test_case "generation" `Quick test_trace_generate;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "stamps events and spans" `Quick
            test_trace_stamps_events_and_spans;
          Alcotest.test_case "slow sink demultiplexes" `Quick
            test_slow_sink_demultiplexes;
          Alcotest.test_case "slow sink untraced" `Quick
            test_slow_sink_untraced_still_works;
          Alcotest.test_case "slow sink drop_trace" `Quick
            test_slow_sink_drop_trace;
        ] );
      ( "events",
        [
          Alcotest.test_case "inactive by default" `Quick
            test_event_inactive_by_default;
          Alcotest.test_case "ordering" `Quick test_event_ordering;
          Alcotest.test_case "ring capacity" `Quick test_event_ring_capacity;
          Alcotest.test_case "jsonl escaping" `Quick test_event_jsonl_escaping;
          Alcotest.test_case "slow-query threshold" `Quick test_slow_query_threshold;
          Alcotest.test_case "slow-query record replays" `Quick
            test_slow_query_record_replays;
          Alcotest.test_case "executor event stream" `Quick
            test_executor_event_stream;
          Alcotest.test_case "compiled event stream" `Quick
            test_compiled_event_stream;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "ring buffer" `Quick test_span_ring_buffer;
          Alcotest.test_case "capacity" `Quick test_span_capacity;
        ] );
      ( "executor integration",
        [
          Alcotest.test_case "golden metric names" `Quick test_executor_emits_metrics;
          Alcotest.test_case "phases = trace view" `Quick test_stats_phases_are_trace_view;
        ] );
    ]
