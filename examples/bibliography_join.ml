(* The paper's Example 13: join DBLP against the SIGMOD proceedings pages,
   matching papers whose titles are similar -- even though the proceedings
   pages abbreviate title words and store the venue under a different tag
   and name.

   The same ground-truth corpus is rendered in both schemas, the Ontology
   Maker + fusion + SEA pipeline precomputes one similarity-enhanced
   ontology spanning both, and the TOSS executor evaluates the join
   pattern of Figure 14.

   Run with: dune exec examples/bibliography_join.exe *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Collection = Toss_store.Collection
module Seo = Toss_core.Seo
module Executor = Toss_core.Executor
module Corpus = Toss_data.Corpus
module Dblp_gen = Toss_data.Dblp_gen
module Sigmod_gen = Toss_data.Sigmod_gen
module Workload = Toss_data.Workload

let () =
  (* One corpus, two renderings. *)
  let corpus = Corpus.generate ~seed:2026 ~n_papers:40 () in
  let dblp = Dblp_gen.render ~seed:2026 corpus in
  let sigmod = Sigmod_gen.render ~seed:2026 corpus in

  let left = Collection.create "dblp" in
  ignore (Collection.add_document left dblp.Dblp_gen.tree);
  let right = Collection.create "sigmod" in
  List.iter (fun t -> ignore (Collection.add_document right t)) sigmod.Sigmod_gen.trees;
  let left = Collection.snapshot left and right = Collection.snapshot right in

  Printf.printf "DBLP rendering:  %d papers in one document\n"
    (Array.length corpus.Corpus.papers);
  Printf.printf "SIGMOD rendering: %d proceedings pages\n\n"
    (List.length sigmod.Sigmod_gen.trees);

  (* Precompute the similarity-enhanced fused ontology across both
     sources (architecture components 1 and 2). *)
  let docs =
    Doc.of_tree dblp.Dblp_gen.tree :: List.map Doc.of_tree sigmod.Sigmod_gen.trees
  in
  let seo =
    match
      Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0
        ~content_tags:[ "booktitle"; "conference" ] docs
    with
    | Ok seo -> seo
    | Error msg -> failwith msg
  in

  (* Figure 14's pattern: inproceedings/title x article/title with the two
     titles similar. *)
  let pattern, sl = Workload.join_query () in

  let run mode label =
    let results, stats = Executor.join ~mode seo left right ~pattern ~sl in
    let pairs = Workload.result_key_pairs results in
    let correct = List.length (List.filter (fun (l, r) -> l = r) pairs) in
    Printf.printf "%-10s %3d joined pairs (%d correct) in %.4fs\n" label
      (List.length pairs) correct
      (Executor.total_s stats.Executor.phases);
    pairs
  in
  let tax_pairs = run Executor.Tax "TAX" in
  let toss_pairs = run Executor.Toss "TOSS(2)" in

  (* Show a pair TAX missed: the proceedings page abbreviated the title. *)
  let missed = List.filter (fun p -> not (List.mem p tax_pairs)) toss_pairs in
  match missed with
  | (key, _) :: _ ->
      let paper = Option.get (Corpus.paper_by_key corpus key) in
      let page_title = List.assoc key sigmod.Sigmod_gen.title_strings in
      Printf.printf
        "\nexample of a pair only TOSS finds:\n  DBLP title:   %s\n  page title:   %s\n"
        paper.Corpus.title page_title
  | [] -> Printf.printf "\n(no TAX misses in this draw)\n"
