(* The [toss] command-line tool: generate bibliographic data, inspect
   documents and their ontologies, and run XPath or TQL queries under the
   TAX or TOSS semantics.

     toss generate --papers 100 --schema dblp -o dblp.xml
     toss info dblp.xml
     toss xpath dblp.xml "//inproceedings[booktitle='VLDB']/title"
     toss ontology dblp.xml --relation part-of
     toss clusters dblp.xml --eps 2
     toss query dblp.xml 'MATCH #1:inproceedings(/#2:author)
                          WHERE #2.content ~ "Jeffrey D. Ullman" SELECT #1'
*)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Parser = Toss_xml.Parser
module Printer = Toss_xml.Printer
module Collection = Toss_store.Collection
module Hierarchy = Toss_hierarchy.Hierarchy
module Node = Toss_hierarchy.Node
module Ontology = Toss_ontology.Ontology
module Maker = Toss_ontology.Maker
module Sea = Toss_similarity.Sea
module Seo = Toss_core.Seo
module Executor = Toss_core.Executor
module Tql = Toss_core.Tql
module Corpus = Toss_data.Corpus
module Workload = Toss_data.Workload

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_doc path =
  match Parser.parse (read_file path) with
  | Ok tree -> tree
  | Error e ->
      Format.eprintf "%s: %a@." path Parser.pp_error e;
      exit 1

let write_out output content =
  match output with
  | None -> print_string content
  | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc content)

(* ---------------------------- generate ---------------------------- *)

let generate papers seed schema output =
  let corpus = Corpus.generate ~seed ~n_papers:papers () in
  (match schema with
  | "dblp" ->
      let rendered = Toss_data.Dblp_gen.render ~seed corpus in
      write_out output (Printer.to_pretty_string ~decl:true rendered.Toss_data.Dblp_gen.tree)
  | "sigmod" ->
      let rendered = Toss_data.Sigmod_gen.render ~seed corpus in
      let body =
        String.concat "\n"
          (List.map Printer.to_pretty_string rendered.Toss_data.Sigmod_gen.trees)
      in
      write_out output ("<pages>\n" ^ body ^ "</pages>\n")
  | other ->
      Format.eprintf "unknown schema %S (expected dblp or sigmod)@." other;
      exit 1);
  `Ok ()

let generate_cmd =
  let papers =
    Arg.(value & opt int 100 & info [ "papers"; "n" ] ~docv:"N" ~doc:"Number of papers.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let schema =
    Arg.(value & opt string "dblp" & info [ "schema" ] ~docv:"SCHEMA"
           ~doc:"Output schema: dblp or sigmod.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (stdout if omitted).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic bibliography with ground truth.")
    Term.(ret (const generate $ papers $ seed $ schema $ output))

(* ------------------------------ info ------------------------------ *)

let info_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let tree = load_doc file in
    let doc = Doc.of_tree tree in
    Printf.printf "root tag:  %s\n" (Doc.tag doc (Doc.root doc));
    Printf.printf "elements:  %d\n" (Doc.size doc);
    Printf.printf "bytes:     %d\n" (Printer.byte_size tree);
    Printf.printf "tags:      %s\n" (String.concat ", " (Doc.tags doc));
    `Ok ()
  in
  Cmd.v (Cmd.info "info" ~doc:"Show statistics of an XML document.")
    Term.(ret (const run $ file))

(* ----------------------------- xpath ------------------------------ *)

let xpath_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let query = Arg.(required & pos 1 (some string) None & info [] ~docv:"XPATH") in
  let run file query =
    let tree = load_doc file in
    let c = Collection.create "cli" in
    ignore (Collection.add_document c tree);
    match Toss_store.Xpath_parser.parse query with
    | Error msg -> `Error (false, "XPath syntax error " ^ msg)
    | Ok q ->
        let hits = Collection.eval c q in
        Printf.printf "%d node(s)\n" (List.length hits);
        List.iter
          (fun t -> print_string (Printer.to_pretty_string t))
          (Collection.subtrees c hits);
        `Ok ()
  in
  Cmd.v (Cmd.info "xpath" ~doc:"Evaluate an XPath query against a document.")
    Term.(ret (const run $ file $ query))

(* ---------------------------- ontology ---------------------------- *)

let ontology_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let relation =
    Arg.(value & opt string "isa" & info [ "relation" ] ~docv:"REL"
           ~doc:"Relation to print: isa or part-of.")
  in
  let run file relation =
    let tree = load_doc file in
    let o = Maker.make (Doc.of_tree tree) in
    let rel = if relation = "part-of" then Ontology.part_of else Ontology.isa in
    let h = Ontology.get rel o in
    Printf.printf "%s hierarchy: %d nodes, %d edges\n" relation (Hierarchy.n_nodes h)
      (Hierarchy.n_edges h);
    List.iter
      (fun (lo, hi) -> Printf.printf "  %s <= %s\n" (Node.to_string lo) (Node.to_string hi))
      (Hierarchy.edges h);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "ontology"
       ~doc:"Run the Ontology Maker on a document and print a hierarchy.")
    Term.(ret (const run $ file $ relation))

(* ---------------------------- clusters ---------------------------- *)

let clusters_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let eps =
    Arg.(value & opt float 2.0 & info [ "eps" ] ~docv:"EPS"
           ~doc:"Similarity threshold for the SEA algorithm.")
  in
  let run file eps =
    let tree = load_doc file in
    let o = Maker.make (Doc.of_tree tree) in
    let isa = Ontology.get Ontology.isa o in
    (match Sea.enhance ~metric:Workload.experiment_metric ~eps isa with
    | None -> Printf.printf "similarity inconsistent at eps = %g\n" eps
    | Some e ->
        let multi = List.filter (fun c -> Node.cardinal c > 1) (Sea.clusters e) in
        Printf.printf "%d multi-term clusters at eps = %g:\n" (List.length multi) eps;
        List.iter
          (fun c -> Printf.printf "  { %s }\n" (String.concat " | " (Node.strings c)))
          multi);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "clusters"
       ~doc:"Show the similarity-enhanced ontology's term clusters.")
    Term.(ret (const run $ file $ eps))

(* ------------------------------ dot ------------------------------- *)

let dot_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let relation =
    Arg.(value & opt string "isa" & info [ "relation" ] ~docv:"REL"
           ~doc:"Relation to export: isa or part-of.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output .dot file (stdout if omitted).")
  in
  let run file relation output =
    let tree = load_doc file in
    let o = Maker.make (Doc.of_tree tree) in
    let rel = if relation = "part-of" then Ontology.part_of else Ontology.isa in
    write_out output (Hierarchy.to_dot ~name:relation (Ontology.get rel o));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a document's ontology hierarchy as Graphviz.")
    Term.(ret (const run $ file $ relation $ output))

(* ----------------------------- query ------------------------------ *)

(* The per-phase breakdown, printed from the trace; because the stats
   phases are themselves a view over the same trace, the totals shown
   here agree with [Executor.total_s stats.phases] exactly. *)
let print_phase_table oc (stats : Executor.stats) =
  let total = Executor.total_s stats.Executor.phases in
  let share s = if total > 0. then 100. *. s /. total else 0. in
  Printf.fprintf oc "phase breakdown:\n";
  Printf.fprintf oc "  %-10s %12s %7s\n" "phase" "seconds" "share";
  List.iter
    (fun (name, s) ->
      Printf.fprintf oc "  %-10s %12.6f %6.1f%%\n" name s (share s))
    [
      ("rewrite", stats.Executor.phases.Executor.rewrite_s);
      ("execute", stats.Executor.phases.Executor.execute_s);
      ("assemble", stats.Executor.phases.Executor.assemble_s);
    ];
  Printf.fprintf oc "  %-10s %12.6f\n" "total" total

let print_trace oc (stats : Executor.stats) =
  print_phase_table oc stats;
  Printf.fprintf oc "trace:\n%s" (Toss_obs.Span.to_string stats.Executor.trace)

let query files right query mode eps show_xpath explain no_planner no_compile
    no_simjoin trace show_stats explain_analyze analyze_json profile slow_ms =
  (* EXPLAIN ANALYZE implies tracing: the analyzed plan is the span tree
     with its per-operator actuals (and allocation deltas). *)
  if trace || explain_analyze || analyze_json <> None then
    Toss_obs.Span.set_enabled true;
  (* Profiler sinks. [--profile] streams every event as JSONL to a file;
     [--slow-ms] writes one slow-query record (full event stream + span
     tree) to stderr per query at or over the threshold. *)
  let profile_oc = Option.map open_out profile in
  Option.iter
    (fun oc -> Toss_obs.Event.install (Toss_obs.Event.jsonl_to_channel oc))
    profile_oc;
  Option.iter
    (fun ms ->
      Toss_obs.Event.install
        (Toss_obs.Event.slow_query ~threshold_s:(float_of_int ms /. 1000.)
           ~write:(fun line ->
             output_string stderr line;
             output_char stderr '\n';
             flush stderr)))
    slow_ms;
  Fun.protect ~finally:(fun () -> Option.iter close_out_noerr profile_oc)
  @@ fun () ->
  let trees = List.map load_doc files in
  let c = Collection.create "cli" in
  List.iter (fun t -> ignore (Collection.add_document c t)) trees;
  let coll = Collection.snapshot c in
  (* [--right FILE] turns the query into a condition join: the
     positional FILEs are the left collection, [FILE] the right one, and
     the pattern root's two children are matched one per side. *)
  let right_trees = List.map load_doc right in
  let right_coll =
    match right_trees with
    | [] -> None
    | ts ->
        let rc = Collection.create "cli-right" in
        List.iter (fun t -> ignore (Collection.add_document rc t)) ts;
        Some (Collection.snapshot rc)
  in
  match Tql.parse query with
  | Error msg -> `Error (false, "TQL syntax error: " ^ msg)
  | Ok q -> (
      let docs = List.map Doc.of_tree (trees @ right_trees) in
      match Seo.of_documents ~metric:Workload.experiment_metric ~eps docs with
      | Error msg -> `Error (false, msg)
      | Ok seo -> (
          match right_coll with
          | Some rcoll -> (
              (* Join path: EXPLAIN prints the physical plan (pairing
                 strategy included); otherwise execute and report like a
                 selection. *)
              match q.Tql.target with
              | Tql.Project _ -> `Error (false, "toss query --right: SELECT queries only")
              | Tql.Select sl ->
                  if explain then begin
                    let plan =
                      Toss_core.Planner.plan_join ~mode
                        ~optimize:(not no_planner) ~compile:(not no_compile)
                        ~simjoin:(not no_simjoin) seo coll rcoll
                        ~pattern:q.Tql.pattern ~sl
                    in
                    print_string "EXPLAIN\n";
                    print_string (Toss_core.Plan.to_string plan);
                    print_newline ();
                    `Ok ()
                  end
                  else begin
                    let results, stats =
                      Executor.join ~mode ~planner:(not no_planner)
                        ~compile:(not no_compile) ~simjoin:(not no_simjoin) seo
                        coll rcoll ~pattern:q.Tql.pattern ~sl
                    in
                    Printf.printf "%d result(s) in %.4fs\n" (List.length results)
                      (Executor.total_s stats.Executor.phases);
                    List.iter
                      (fun t -> print_string (Printer.to_pretty_string t))
                      results;
                    if trace then print_trace stdout stats;
                    if explain_analyze then begin
                      print_string "EXPLAIN ANALYZE\n";
                      print_string (Toss_obs.Span.to_string stats.Executor.trace)
                    end;
                    if show_stats then
                      print_string
                        (Toss_obs.Metrics.to_table (Toss_obs.Metrics.snapshot ()));
                    `Ok ()
                  end)
          | None ->
          if show_xpath then
            prerr_endline
              (Toss_core.Explain.to_string
                 (Toss_core.Explain.explain ~mode seo q.Tql.pattern));
          (match q.Tql.target with
          | Tql.Project _ when explain ->
              prerr_endline "toss query --explain: SELECT queries only \
                             (projections bypass the planner)"
          | Tql.Select sl when explain ->
              (* EXPLAIN without ANALYZE: build the plan (rewrite +
                 statistics only) and show it without executing. *)
              let plan =
                Toss_core.Planner.plan_select ~mode ~optimize:(not no_planner)
                  ~compile:(not no_compile) seo coll ~pattern:q.Tql.pattern ~sl
              in
              let e =
                Toss_core.Explain.with_plan
                  (Toss_core.Explain.explain ~mode seo q.Tql.pattern)
                  plan
              in
              print_string "EXPLAIN\n";
              print_string (Toss_core.Explain.to_string e)
          | Tql.Project pl ->
              (* Projections run through the in-memory algebra. *)
              let eval =
                match mode with
                | Executor.Tax -> Toss_tax.Condition.eval_tax
                | Executor.Toss -> Toss_core.Toss_condition.evaluator seo
              in
              let results =
                Toss_tax.Algebra.project ~eval ~pattern:q.Tql.pattern ~pl trees
              in
              Printf.printf "%d result(s)\n" (List.length results);
              List.iter (fun t -> print_string (Printer.to_pretty_string t)) results
          | Tql.Select sl ->
              let results, stats =
                Executor.select ~mode ~planner:(not no_planner)
                  ~compile:(not no_compile) seo coll ~pattern:q.Tql.pattern ~sl
              in
              Printf.printf "%d result(s) in %.4fs\n" (List.length results)
                (Executor.total_s stats.Executor.phases);
              List.iter (fun t -> print_string (Printer.to_pretty_string t)) results;
              (* Observability output goes to stdout, like the results it
                 annotates (and like [toss stats]); stderr is reserved
                 for errors and the slow-query log. *)
              if trace then print_trace stdout stats;
              if explain_analyze || analyze_json <> None then begin
                let plan =
                  Toss_core.Explain.with_trace
                    (Toss_core.Explain.explain ~mode seo q.Tql.pattern)
                    stats.Executor.trace
                in
                if explain_analyze then begin
                  print_string "EXPLAIN ANALYZE\n";
                  print_string (Toss_core.Explain.to_string plan)
                end;
                Option.iter
                  (fun path ->
                    write_out (Some path) (Toss_core.Explain.to_json plan ^ "\n"))
                  analyze_json
              end);
          if show_stats then
            print_string (Toss_obs.Metrics.to_table (Toss_obs.Metrics.snapshot ()));
          `Ok ()))

let query_cmd =
  let files =
    Arg.(non_empty & pos_left ~rev:true 0 file [] & info [] ~docv:"FILE")
  in
  let q = Arg.(required & pos ~rev:true 0 (some string) None & info [] ~docv:"TQL") in
  let right =
    Arg.(value & opt_all file [] & info [ "right" ] ~docv:"FILE"
           ~doc:"Run a condition join: the positional files are the left \
                 collection, the $(docv)s (repeatable) the right one. The \
                 pattern root's two children are matched one per \
                 collection; cross conditions (including $(b,~)/$(b,isa) \
                 atoms) relate them.")
  in
  let mode =
    Arg.(value
         & opt (enum [ ("toss", Executor.Toss); ("tax", Executor.Tax) ]) Executor.Toss
         & info [ "mode" ] ~docv:"MODE" ~doc:"Semantics: toss (default) or tax.")
  in
  let eps =
    Arg.(value & opt float 2.0 & info [ "eps" ] ~docv:"EPS"
           ~doc:"Similarity threshold.")
  in
  let show_xpath =
    Arg.(value & flag & info [ "show-xpath" ]
           ~doc:"Print the rewritten XPath queries to stderr.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Show the query plan without executing it: the rewritten \
                 store queries, the physical operator tree with the \
                 planner's estimated cardinalities, scan order, pruning \
                 and join strategy.")
  in
  let no_planner =
    Arg.(value & flag & info [ "no-planner" ]
           ~doc:"Disable cost-based planning: scans run in rewrite order, \
                 no candidate-document pruning, nested-loop pairing. \
                 Results are identical; only the work differs.")
  in
  let no_compile =
    Arg.(value & flag & info [ "no-compile" ]
           ~doc:"Disable pattern compilation: run the interpreted \
                 scan/prune/embed pipeline instead of the single-pass \
                 compiled matcher. Results are identical; only the work \
                 differs.")
  in
  let no_simjoin =
    Arg.(value & flag & info [ "no-simjoin" ]
           ~doc:"Joins only: disable the signature-indexed similarity \
                 pairing ($(b,sim-pair)) and keep nested-loop pairing \
                 for $(b,~)/$(b,isa) cross conditions. Results are \
                 identical; only the work differs.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print the per-phase breakdown and the nested execution \
                 span tree (with allocation deltas) after the results.")
  in
  let show_stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the metrics-registry snapshot (index hit rates, \
                 rewrite fan-out, embedding counts) after the results.")
  in
  let explain_analyze =
    Arg.(value & flag & info [ "explain-analyze" ]
           ~doc:"Run the query, then print the plan annotated with \
                 per-operator actuals: rows in/out of every rewritten \
                 XPath step, per-document embedding counts, and wall \
                 time per phase.")
  in
  let analyze_json =
    Arg.(value & opt (some string) None & info [ "analyze-json" ] ~docv:"FILE"
           ~doc:"Write the analyzed plan (as printed by \
                 $(b,--explain-analyze)) as JSON to $(docv).")
  in
  let profile =
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE"
           ~doc:"Stream the structured profiler events of this run \
                 (query_start, rewrite_done, xpath_exec, embed_done, \
                 query_end) as line-delimited JSON to $(docv).")
  in
  let slow_ms =
    Arg.(value & opt (some int) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Slow-query log: if the query takes at least $(docv) \
                 milliseconds, write one JSON record with its full \
                 event stream and span tree to stderr.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run a TQL pattern-tree query over one or more documents.")
    Term.(ret
            (const query $ files $ right $ q $ mode $ eps $ show_xpath $ explain
             $ no_planner $ no_compile $ no_simjoin $ trace $ show_stats
             $ explain_analyze $ analyze_json $ profile $ slow_ms))

(* ----------------------------- stats ------------------------------ *)

(* [toss stats] = run a selection with tracing on and report only the
   observability side: phase table, span tree, metrics snapshot. *)
let stats_run files query mode eps =
  Toss_obs.Span.set_enabled true;
  let trees = List.map load_doc files in
  let c = Collection.create "cli" in
  List.iter (fun t -> ignore (Collection.add_document c t)) trees;
  let coll = Collection.snapshot c in
  match Tql.parse query with
  | Error msg -> `Error (false, "TQL syntax error: " ^ msg)
  | Ok q -> (
      let docs = List.map Doc.of_tree trees in
      match Seo.of_documents ~metric:Workload.experiment_metric ~eps docs with
      | Error msg -> `Error (false, msg)
      | Ok seo -> (
          match q.Tql.target with
          | Tql.Project _ -> `Error (false, "toss stats: SELECT queries only")
          | Tql.Select sl ->
              let results, stats =
                Executor.select ~mode seo coll ~pattern:q.Tql.pattern ~sl
              in
              Printf.printf "%d result(s): %d candidate(s) -> %d embedding(s) -> %d witness(es)\n"
                (List.length results) stats.Executor.n_candidates
                stats.Executor.n_embeddings stats.Executor.n_results;
              print_trace stdout stats;
              print_string "metrics:\n";
              print_string
                (Toss_obs.Metrics.to_table (Toss_obs.Metrics.snapshot ()));
              `Ok ()))

let stats_cmd =
  let files =
    Arg.(non_empty & pos_left ~rev:true 0 file [] & info [] ~docv:"FILE")
  in
  let q = Arg.(required & pos ~rev:true 0 (some string) None & info [] ~docv:"TQL") in
  let mode =
    Arg.(value
         & opt (enum [ ("toss", Executor.Toss); ("tax", Executor.Tax) ]) Executor.Toss
         & info [ "mode" ] ~docv:"MODE" ~doc:"Semantics: toss (default) or tax.")
  in
  let eps =
    Arg.(value & opt float 2.0 & info [ "eps" ] ~docv:"EPS"
           ~doc:"Similarity threshold.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a TQL selection and report its trace and metrics instead \
             of its results.")
    Term.(ret (const stats_run $ files $ q $ mode $ eps))

(* ----------------------------- serve ------------------------------ *)

(* Exactly one of [--listen ADDR] (tcp:HOST:PORT / unix:PATH / bare
   path) and the historical [--socket PATH] names the bind address. *)
let listen_addr listen socket =
  match (listen, socket) with
  | Some _, Some _ -> Error "use exactly one of --listen and --socket"
  | None, None -> Error "one of --listen or --socket is required"
  | Some a, None -> Toss_server.Transport.parse a
  | None, Some p -> Ok (Toss_server.Transport.Unix_sock p)

let serve_run listen socket db domains max_queue default_deadline_ms no_cache
    cache_capacity eps slow_ms access_log trace_sample =
  if domains < 0 then `Error (true, "--domains must be >= 0")
  else if max_queue < 0 then `Error (true, "--max-queue must be >= 0")
  else if trace_sample < 0 then `Error (true, "--trace-sample must be >= 0")
  else begin
    match listen_addr listen socket with
    | Error msg -> `Error (true, msg)
    | Ok listen ->
    Option.iter
      (fun ms ->
        Toss_obs.Event.install
          (Toss_obs.Event.slow_query ~threshold_s:(float_of_int ms /. 1000.)
             ~write:(fun line ->
               output_string stderr line;
               output_char stderr '\n';
               flush stderr)))
      slow_ms;
    let config =
      {
        Toss_server.Server.listen;
        db_dir = db;
        domains;
        max_queue;
        default_deadline_ms;
        cache_capacity = (if no_cache then 0 else cache_capacity);
        (* The same composite measure one-shot [toss query] uses, so a
           served query returns the same answers as the CLI. *)
        metric = Some Workload.experiment_metric;
        eps;
        access_log;
        trace_sample;
      }
    in
    let ready resolved =
      Printf.printf "toss serve: listening on %s (domains=%d, queue=%d, cache=%d)\n%!"
        resolved domains max_queue config.Toss_server.Server.cache_capacity
    in
    match Toss_server.Server.run ~ready config with
    | Ok () ->
        print_endline "toss serve: stopped";
        `Ok ()
    | Error msg -> `Error (false, msg)
  end

let serve_cmd =
  let listen =
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR"
           ~doc:"Listen address: $(b,tcp:HOST:PORT) (port 0 picks a free \
                 port, printed on startup), $(b,unix:PATH), or a bare \
                 socket path. Use exactly one of $(b,--listen) and \
                 $(b,--socket).")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path to listen on (shorthand for \
                 $(b,--listen unix:PATH)).")
  in
  let db =
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"DIR"
           ~doc:"Database directory: hydrate collections from it on start \
                 and append every insert to it (created if missing).")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains"; "workers" ] ~docv:"N"
           ~doc:"Worker domains executing queued requests in parallel \
                 ($(b,--workers) is accepted as an alias).")
  in
  let max_queue =
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission-control queue bound; requests beyond it are shed \
                 with the typed $(b,overloaded) error.")
  in
  let default_deadline_ms =
    Arg.(value & opt (some int) None & info [ "default-deadline-ms" ] ~docv:"MS"
           ~doc:"Deadline applied to requests that carry none.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ]
           ~doc:"Disable the versioned query-result cache.")
  in
  let cache_capacity =
    Arg.(value & opt int 256 & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Result-cache entry bound (FIFO eviction).")
  in
  let eps =
    Arg.(value & opt float 2.0 & info [ "eps" ] ~docv:"EPS"
           ~doc:"Similarity threshold of the serving session.")
  in
  let slow_ms =
    Arg.(value & opt (some int) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Slow-query log: write one JSON record to stderr per query \
                 at or over the threshold, keyed by the request's trace id \
                 (correct with any number of domains).")
  in
  let access_log =
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Append one JSON record per request to $(docv): trace id, \
                 op, collection+version, cache status, queue-wait and \
                 execution seconds, worker domain, status.")
  in
  let trace_sample =
    Arg.(value & opt int 0 & info [ "trace-sample" ] ~docv:"N"
           ~doc:"Record the full span tree into the access log for every \
                 $(docv)th pooled request (head-based sampling; 0 records \
                 none).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve collections over a Unix-domain socket or TCP: a \
             newline-delimited JSON protocol (with a binary framed \
             alternative negotiated per connection) with a worker pool, \
             per-request deadlines, admission control and a versioned \
             result cache.")
    Term.(ret
            (const serve_run $ listen $ socket $ db $ domains $ max_queue
             $ default_deadline_ms $ no_cache $ cache_capacity $ eps $ slow_ms
             $ access_log $ trace_sample))

(* ----------------------------- client ----------------------------- *)

let client_run socket codec allow_partial op arg1 arg2 arg3 mode no_cache
    deadline_ms trace_id bench concurrency allow_errors table =
  let need2 what k =
    match (arg1, arg2) with
    | Some a, Some b -> k a b
    | _ -> Error (Printf.sprintf "%s needs %s" op what)
  in
  let need3 what k =
    match (arg1, arg2, arg3) with
    | Some a, Some b, Some c -> k a b c
    | _ -> Error (Printf.sprintf "%s needs %s" op what)
  in
  let request =
    match op with
    | "ping" -> Ok Toss_server.Protocol.Ping
    | "stats" -> Ok Toss_server.Protocol.Stats
    | "metrics" -> Ok Toss_server.Protocol.Metrics
    | "shutdown" -> Ok Toss_server.Protocol.Shutdown
    | "insert" ->
        need2 "COLLECTION and an XML FILE" (fun collection file ->
            if Sys.file_exists file then
              Ok (Toss_server.Protocol.Insert { collection; xml = read_file file })
            else Error (Printf.sprintf "no such file: %s" file))
    | "query" ->
        need2 "COLLECTION and TQL" (fun collection tql ->
            Ok
              (Toss_server.Protocol.Query
                 { collection; tql; mode; cache = not no_cache }))
    | "join" ->
        need3 "LEFT, RIGHT and TQL" (fun left right tql ->
            Ok (Toss_server.Protocol.Join { left; right; tql; mode }))
    | "explain" ->
        need2 "COLLECTION and TQL" (fun collection tql ->
            Ok (Toss_server.Protocol.Explain { collection; tql; mode }))
    | other ->
        Error
          (Printf.sprintf
             "unknown op %S (expected ping, insert, query, join, explain, \
              stats, metrics or shutdown)"
             other)
  in
  match request with
  | Error msg -> `Error (true, msg)
  | Ok request -> (
      match bench with
      | Some requests -> (
          Printf.eprintf
            "toss client: note: --bench is closed-loop and understates tail \
             latency under load; prefer `toss loadgen` (open-loop)\n%!";
          match
            Toss_server.Client.bench ~codec ~socket ~requests ~concurrency
              ?deadline_ms
              (fun _ -> request)
          with
          | Error msg -> `Error (false, msg)
          | Ok r ->
              print_endline (Toss_json.to_string (Toss_server.Client.bench_to_json r));
              if
                (not allow_errors)
                && (r.Toss_server.Client.transport_errors > 0
                   || r.Toss_server.Client.errors <> [])
              then exit 1
              else `Ok ())
      | None -> (
          match Toss_server.Client.connect ~codec socket with
          | Error msg -> `Error (false, msg)
          | Ok conn -> (
              let result =
                Toss_server.Client.call conn ?deadline_ms ?trace_id
                  ~allow_partial request
              in
              Toss_server.Client.close conn;
              match result with
              | Ok payload ->
                  (* [--table] renders the human form of a stats payload;
                     [metrics] prints the raw Prometheus exposition (the
                     scrape format — curl-pipe friendly); everything else
                     prints the result as one JSON line. *)
                  (match
                     if table then
                       Option.bind (Toss_json.member "table" payload)
                         Toss_json.to_str
                     else if op = "metrics" then
                       Option.bind (Toss_json.member "prometheus" payload)
                         Toss_json.to_str
                     else None
                   with
                  | Some text -> print_string text
                  | None -> print_endline (Toss_json.to_string payload));
                  `Ok ()
              | Error (Toss_server.Client.Wire e) ->
                  Printf.eprintf "error %s: %s\n"
                    (Toss_server.Protocol.code_name e.Toss_server.Protocol.code)
                    e.Toss_server.Protocol.message;
                  exit 1
              | Error (Toss_server.Client.Transport msg) -> `Error (false, msg))))

let codec_arg =
  Arg.(value
       & opt
           (enum
              [
                ("json", Toss_server.Protocol.Json);
                ("binary", Toss_server.Protocol.Binary);
              ])
           Toss_server.Protocol.Json
       & info [ "codec" ] ~docv:"CODEC"
           ~doc:"Wire codec: $(b,json) (newline-delimited, default) or \
                 $(b,binary) (length-prefixed frames).")

let client_cmd =
  let socket =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"ADDR"
           ~doc:"Server address: a Unix-domain socket path, \
                 $(b,unix:PATH), or $(b,tcp:HOST:PORT).")
  in
  let allow_partial =
    Arg.(value & flag & info [ "allow-partial" ]
           ~doc:"Against $(b,toss router): accept a merged answer from the \
                 reachable shards when some shard is down, instead of the \
                 $(b,shard_unavailable) error.")
  in
  let op =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP"
           ~doc:"One of ping, insert, query, join, explain, stats, metrics, \
                 shutdown. $(b,join) takes LEFT RIGHT TQL; $(b,metrics) \
                 prints the server's Prometheus text exposition.")
  in
  let arg1 = Arg.(value & pos 1 (some string) None & info [] ~docv:"COLLECTION") in
  let arg2 = Arg.(value & pos 2 (some string) None & info [] ~docv:"ARG") in
  let arg3 = Arg.(value & pos 3 (some string) None & info [] ~docv:"ARG2") in
  let mode =
    Arg.(value
         & opt (enum [ ("toss", Executor.Toss); ("tax", Executor.Tax) ]) Executor.Toss
         & info [ "mode" ] ~docv:"MODE" ~doc:"Semantics: toss (default) or tax.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ]
           ~doc:"Ask the server to bypass its result cache for this query.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request deadline.")
  in
  let trace_id =
    Arg.(value & opt (some string) None & info [ "trace-id" ] ~docv:"ID"
           ~doc:"Trace id to stamp on the request (1-128 printable ASCII \
                 characters); the server echoes it and keys its logs by \
                 it. Generated server-side when omitted.")
  in
  let bench =
    Arg.(value & opt (some int) None & info [ "bench" ] ~docv:"N"
           ~doc:"Closed-loop benchmark: send the request $(docv) times and \
                 print a latency/error summary as JSON. Exits 1 on any \
                 error unless $(b,--allow-errors). Deprecated for latency \
                 measurement: closed-loop numbers hide queueing delay \
                 (coordinated omission) — prefer $(b,toss loadgen), the \
                 open-loop generator.")
  in
  let concurrency =
    Arg.(value & opt int 4 & info [ "concurrency" ] ~docv:"C"
           ~doc:"Bench connections (threads), each with one request \
                 outstanding.")
  in
  let allow_errors =
    Arg.(value & flag & info [ "allow-errors" ]
           ~doc:"Bench only: report errors in the summary instead of \
                 exiting 1 (for deliberately induced overload).")
  in
  let table =
    Arg.(value & flag & info [ "table" ]
           ~doc:"With $(b,stats): print the human-readable metrics table \
                 instead of JSON.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a running $(b,toss serve): one-shot requests or a \
             closed-loop benchmark.")
    Term.(ret
            (const client_run $ socket $ codec_arg $ allow_partial $ op $ arg1
             $ arg2 $ arg3 $ mode $ no_cache $ deadline_ms $ trace_id $ bench
             $ concurrency $ allow_errors $ table))

(* ----------------------------- router ----------------------------- *)

let router_run listen socket shards replicate connect_retry_ms =
  match listen_addr listen socket with
  | Error msg -> `Error (true, msg)
  | Ok listen -> (
      match Toss_shard.Shard_map.make ~shards ~replicated:replicate with
      | Error msg -> `Error (true, msg)
      | Ok map -> (
          let config = { Toss_shard.Router.listen; map; connect_retry_ms } in
          let ready resolved =
            Printf.printf "toss router: listening on %s (shards=%d)\n%!"
              resolved
              (Toss_shard.Shard_map.n map)
          in
          match Toss_shard.Router.run ~ready config with
          | Ok () ->
              print_endline "toss router: stopped";
              `Ok ()
          | Error msg -> `Error (false, msg)))

let router_cmd =
  let listen =
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR"
           ~doc:"Listen address ($(b,tcp:HOST:PORT), $(b,unix:PATH), or a \
                 bare socket path). Use exactly one of $(b,--listen) and \
                 $(b,--socket).")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path to listen on.")
  in
  let shards =
    Arg.(non_empty & opt_all string [] & info [ "shard" ] ~docv:"ADDR"
           ~doc:"Address of one shard server (repeatable, order defines \
                 shard numbering). Each shard is a plain $(b,toss serve).")
  in
  let replicate =
    Arg.(value & opt_all string [] & info [ "replicate" ] ~docv:"COLLECTION"
           ~doc:"Replicate $(docv) on every shard instead of partitioning \
                 it (repeatable). Joins are exact when at least one side \
                 is replicated.")
  in
  let connect_retry_ms =
    Arg.(value & opt int 1000 & info [ "connect-retry-ms" ] ~docv:"MS"
           ~doc:"Backoff budget when (re)connecting to a shard.")
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:"Scatter-gather front-end over sharded $(b,toss serve) \
             instances: speaks the same wire protocol, hash-partitions \
             inserts, fans queries and joins out to every shard and merges \
             the answers (canonicalized multiset union), with typed \
             $(b,shard_unavailable) degradation and opt-in partial \
             results.")
    Term.(ret
            (const router_run $ listen $ socket $ shards $ replicate
             $ connect_retry_ms))

(* ----------------------------- loadgen ---------------------------- *)

let loadgen_run socket codec collection requests qps concurrency seed papers
    zipf deadline_ms no_ingest allow_errors =
  if requests <= 0 then `Error (true, "--requests must be positive")
  else if qps <= 0. then `Error (true, "--qps must be positive")
  else begin
    let config =
      {
        Toss_shard.Loadgen.target = socket;
        codec;
        collection;
        requests;
        qps;
        concurrency;
        seed;
        n_papers = papers;
        zipf_s = zipf;
        deadline_ms;
      }
    in
    match Toss_shard.Loadgen.run ~ingest:(not no_ingest) config with
    | Error msg -> `Error (false, msg)
    | Ok report ->
        print_endline
          (Toss_json.to_string (Toss_shard.Loadgen.report_to_json report));
        if (not allow_errors) && Toss_shard.Loadgen.failed report then exit 1
        else `Ok ()
  end

let loadgen_cmd =
  let socket =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"ADDR"
           ~doc:"Server or router address: a Unix-domain socket path, \
                 $(b,unix:PATH), or $(b,tcp:HOST:PORT).")
  in
  let collection =
    Arg.(value & opt string "bib" & info [ "collection" ] ~docv:"NAME"
           ~doc:"Collection to ingest into and query.")
  in
  let requests =
    Arg.(value & opt int 400 & info [ "requests" ] ~docv:"N"
           ~doc:"Number of requests to offer.")
  in
  let qps =
    Arg.(value & opt float 200. & info [ "qps" ] ~docv:"QPS"
           ~doc:"Target offered load: Poisson arrivals at $(docv) \
                 requests/second, scheduled up front (open loop).")
  in
  let concurrency =
    Arg.(value & opt int 8 & info [ "concurrency" ] ~docv:"C"
           ~doc:"Worker threads (connections); bounds in-flight requests. \
                 Latency is still measured from each request's scheduled \
                 arrival, so worker starvation shows up as tail latency \
                 rather than vanishing.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for the corpus, the query mix and the arrival \
                 process.")
  in
  let papers =
    Arg.(value & opt int 60 & info [ "papers" ] ~docv:"N"
           ~doc:"Corpus size to generate and ingest (one document per \
                 paper, split out by the streaming SAX selector).")
  in
  let zipf =
    Arg.(value & opt float 1.1 & info [ "zipf" ] ~docv:"S"
           ~doc:"Zipf exponent of the query-template popularity \
                 distribution (0 = uniform).")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request deadline.")
  in
  let no_ingest =
    Arg.(value & flag & info [ "no-ingest" ]
           ~doc:"Skip corpus ingest (the target already holds the corpus \
                 from an earlier run with the same seed).")
  in
  let allow_errors =
    Arg.(value & flag & info [ "allow-errors" ]
           ~doc:"Report request errors in the summary instead of exiting 1.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Open-loop load generator: ingest a deterministic corpus over \
             the wire, then offer a zipfian TQL query mix at a target QPS \
             with Poisson arrivals and report p50/p90/p99/p999 latency \
             measured from each request's scheduled arrival (no \
             coordinated omission).")
    Term.(ret
            (const loadgen_run $ socket $ codec_arg $ collection $ requests
             $ qps $ concurrency $ seed $ papers $ zipf $ deadline_ms
             $ no_ingest $ allow_errors))

let check_run seed runs op no_simjoin fault repro_out =
  match Toss_check.Harness.fault_of_string fault with
  | None ->
      `Error
        (true,
         Printf.sprintf "unknown fault %S (expected one of: %s)" fault
           (String.concat ", " Toss_check.Harness.fault_names))
  | Some fault ->
      let outcome =
        Toss_check.Harness.run ~fault ?op ~simjoin:(not no_simjoin) ~seed ~runs ()
      in
      Toss_check.Harness.report Format.std_formatter outcome;
      (match outcome with
      | Toss_check.Harness.Pass _ -> `Ok ()
      | Toss_check.Harness.Fail { failure; _ } ->
          (match repro_out with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              output_string oc (Toss_check.Harness.repro failure);
              close_out oc;
              Printf.printf "repro written to %s\n" path);
          exit 1)

let check_cmd =
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"Master seed for case generation.")
  in
  let runs =
    Arg.(value & opt int 200
         & info [ "runs" ] ~docv:"K" ~doc:"Number of random cases to check.")
  in
  let op =
    Arg.(value
         & opt (some (enum [ ("select", Toss_check.Gen.Select); ("join", Toss_check.Gen.Join) ]))
             None
         & info [ "op" ] ~docv:"OP"
             ~doc:"Restrict generated cases to one operator (select or join).")
  in
  let no_simjoin =
    Arg.(value & flag & info [ "no-simjoin" ]
           ~doc:"Run every generated join through nested-loop pairing \
                 instead of the sim-pair operator (the CI matrix's \
                 second axis).")
  in
  let fault =
    Arg.(value & opt string "none"
         & info [ "inject-fault" ] ~docv:"FAULT"
             ~doc:"Inject a known engine fault (hash-no-recheck, \
                   prune-first-only, no-dedup, \
                   compile-skip-descendant-edge, simjoin-prefix-too-short, \
                   simjoin-no-recheck) to exercise the harness; it must \
                   be caught and shrunk.")
  in
  let repro_out =
    Arg.(value & opt (some string) None
         & info [ "repro-out" ] ~docv:"FILE"
             ~doc:"On failure, also write the paste-into-test repro here.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential correctness check: random queries and corpora, \
             every engine configuration against a naive reference oracle; \
             failures are shrunk to a minimal repro. Exits 1 on a \
             discrepancy.")
    Term.(ret (const check_run $ seed $ runs $ op $ no_simjoin $ fault $ repro_out))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "toss" ~version:"1.0.0"
      ~doc:"TOSS: ontology- and similarity-aware queries over XML"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ generate_cmd; info_cmd; xpath_cmd; ontology_cmd; clusters_cmd; dot_cmd;
            query_cmd; stats_cmd; check_cmd; serve_cmd; client_cmd; router_cmd;
            loadgen_cmd ]))
