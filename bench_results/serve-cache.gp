set datafile separator ','
set key autotitle columnhead
set xlabel "papers"
set ylabel 'value'
set term pngcairo size 800,500
set output 'serve-cache.png'
plot 'serve-cache.csv' using 1:2 with linespoints, \
     'serve-cache.csv' using 1:3 with linespoints, \
     'serve-cache.csv' using 1:4 with linespoints, \
     'serve-cache.csv' using 1:5 with linespoints, \
     'serve-cache.csv' using 1:6 with linespoints
