set datafile separator ','
set key autotitle columnhead
set xlabel "papers/side"
set ylabel 'value'
set term pngcairo size 800,500
set output 'abl-simjoin.png'
plot 'abl-simjoin.csv' using 1:2 with linespoints, \
     'abl-simjoin.csv' using 1:3 with linespoints, \
     'abl-simjoin.csv' using 1:4 with linespoints, \
     'abl-simjoin.csv' using 1:5 with linespoints
