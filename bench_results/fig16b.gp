set datafile separator ','
set key autotitle columnhead
set xlabel "papers/side"
set ylabel 'value'
set term pngcairo size 800,500
set output 'fig16b.png'
plot 'fig16b.csv' using 1:2 with linespoints, \
     'fig16b.csv' using 1:3 with linespoints, \
     'fig16b.csv' using 1:4 with linespoints, \
     'fig16b.csv' using 1:5 with linespoints, \
     'fig16b.csv' using 1:6 with linespoints
