set datafile separator ','
set key autotitle columnhead
set xlabel "eps"
set ylabel 'value'
set term pngcairo size 800,500
set output 'fig16c.png'
plot 'fig16c.csv' using 1:2 with linespoints, \
     'fig16c.csv' using 1:3 with linespoints, \
     'fig16c.csv' using 1:4 with linespoints, \
     'fig16c.csv' using 1:5 with linespoints
