set datafile separator ','
set key autotitle columnhead
set xlabel "papers"
set ylabel 'value'
set term pngcairo size 800,500
set output 'abl-idx.png'
plot 'abl-idx.csv' using 1:2 with linespoints, \
     'abl-idx.csv' using 1:3 with linespoints
