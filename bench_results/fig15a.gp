set datafile separator ','
set key autotitle columnhead
set xlabel "query"
set ylabel 'value'
set term pngcairo size 800,500
set output 'fig15a.png'
plot 'fig15a.csv' using 1:2 with linespoints, \
     'fig15a.csv' using 1:3 with linespoints, \
     'fig15a.csv' using 1:4 with linespoints, \
     'fig15a.csv' using 1:5 with linespoints, \
     'fig15a.csv' using 1:6 with linespoints, \
     'fig15a.csv' using 1:7 with linespoints
