set datafile separator ','
set key autotitle columnhead
set xlabel "deployment"
set ylabel 'value'
set term pngcairo size 800,500
set output 'serve-sharded.png'
plot 'serve-sharded.csv' using 1:2 with linespoints, \
     'serve-sharded.csv' using 1:3 with linespoints, \
     'serve-sharded.csv' using 1:4 with linespoints, \
     'serve-sharded.csv' using 1:5 with linespoints, \
     'serve-sharded.csv' using 1:6 with linespoints, \
     'serve-sharded.csv' using 1:7 with linespoints
