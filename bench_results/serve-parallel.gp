set datafile separator ','
set key autotitle columnhead
set xlabel "domains"
set ylabel 'value'
set term pngcairo size 800,500
set output 'serve-parallel.png'
plot 'serve-parallel.csv' using 1:2 with linespoints, \
     'serve-parallel.csv' using 1:3 with linespoints
