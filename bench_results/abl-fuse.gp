set datafile separator ','
set key autotitle columnhead
set xlabel "hierarchies"
set ylabel 'value'
set term pngcairo size 800,500
set output 'abl-fuse.png'
plot 'abl-fuse.csv' using 1:2 with linespoints, \
     'abl-fuse.csv' using 1:3 with linespoints, \
     'abl-fuse.csv' using 1:4 with linespoints
