set datafile separator ','
set key autotitle columnhead
set xlabel "terms"
set ylabel 'value'
set term pngcairo size 800,500
set output 'abl-sea.png'
plot 'abl-sea.csv' using 1:2 with linespoints, \
     'abl-sea.csv' using 1:3 with linespoints
